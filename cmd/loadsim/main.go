// Command loadsim drives the open-system cluster — N app-server nodes
// behind a load balancer over sharded database backends — with open
// arrivals, and sweeps offered load against the topology's analytic
// capacity. It is the overload laboratory: where ecperfsim and jbbsim are
// closed-loop (offered load self-throttles), loadsim's clients do not wait,
// so pushing past capacity exercises the adaptive admission controls
// (CoDel queue-delay dropping, per-shard AIMD concurrency limits, retry
// budgets, brown-out class shedding) or — with -controls off — demonstrates
// congestion collapse.
//
// Usage:
//
//	loadsim [-nodes N] [-workers N] [-shards N] [-queue-cap N] [-lb POLICY]
//	        [-arrival poisson|bursty|diurnal|flash|off] [-offered MULT]
//	        [-sweep 0.3,1,3] [-controls on|off|both] [-deadline-ms MS]
//	        [-clients N] [-think-ms MS] [-horizon cycles] [-seed N]
//	        [-faults FILE|demo|crash] [-report FILE]
//	        [-latency FILE] [-slo SPEC] [-heartbeat DUR] [-inspect ADDR] ...
//
// -offered and -sweep are multiples of capacity: "-sweep 0.3,0.5,1,2,3
// -controls both" reproduces the goodput-vs-offered-load curve with and
// without controls in one paired, seed-deterministic run. "-arrival flash
// -faults crash" is the flash-crowd-plus-node-crash scenario: a 6x arrival
// spike while app node 0 is down. "-faults demo" runs the standard
// every-kind schedule; its network windows target peer 1, which in this
// topology is database shard 0. "-arrival off" runs a closed-loop
// population (-clients/-think-ms) instead of open arrivals — the
// self-throttling baseline.
//
// With -heartbeat the progress line carries live offered/admitted/shed
// rates; with -inspect the /overload page serves per-node queue depths,
// brown-out levels, and per-shard AIMD limiter state as JSON. With
// -latency/-slo the single run (or the highest-load controls-on sweep
// point) is traced through the reqtrace pipeline and its HDR/SLO report
// printed and written. -trace/-metrics/-profile/-attr are accepted for
// flag parity but inert here: this driver runs the queueing-level cluster
// model, not an instrumented memory-system engine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/arrival"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/reqtrace"
	"repro/internal/report"
	"repro/internal/simrand"
)

// cyclesPerMS converts the -deadline-ms / -think-ms flags to the simulated
// 250 MHz clock.
const cyclesPerMS = core.CyclesPerSecond / 1000

// appFlags is the full flag surface; registerFlags keeps it testable (the
// flag-parity test registers onto a scratch FlagSet).
type appFlags struct {
	nodes, workers, shards *int
	queueCap, clients      *int
	lb, arrivalPat         *string
	sweep, controls        *string
	faults, reportPath     *string
	offered, deadlineMS    *float64
	thinkMS                *float64
	seed, horizon          *uint64
	ofl                    obs.Flags
	hp                     obs.HostProfile
}

func registerFlags(fs *flag.FlagSet) *appFlags {
	af := &appFlags{
		nodes:      fs.Int("nodes", 4, "app-server nodes behind the load balancer (1-64)"),
		workers:    fs.Int("workers", 8, "worker threads per node"),
		shards:     fs.Int("shards", 2, "database shards (1-64)"),
		queueCap:   fs.Int("queue-cap", 64, "bounded per-node request queue (with controls on)"),
		clients:    fs.Int("clients", 16, "closed-loop client population (only with -arrival off)"),
		lb:         fs.String("lb", "least", "load-balancer policy: rr, least, or weighted"),
		arrivalPat: fs.String("arrival", "poisson", "arrival pattern: poisson, bursty, diurnal, flash, or off (closed loop)"),
		sweep:      fs.String("sweep", "", "comma-separated offered-load multipliers, e.g. 0.3,1,3 (overrides -offered)"),
		controls:   fs.String("controls", "on", "adaptive overload controls: on, off, or both (paired runs per point)"),
		faults:     fs.String("faults", "", `fault schedule JSON file, "demo" (every kind; network windows hit shard 0), or "crash" (app node 0 down mid-run)`),
		reportPath: fs.String("report", "", "also write the goodput figure (markdown) to FILE"),
		offered:    fs.Float64("offered", 1, "offered load as a multiple of analytic capacity"),
		deadlineMS: fs.Float64("deadline-ms", 25, "client patience; later completions count as wasted work, not goodput"),
		thinkMS:    fs.Float64("think-ms", 16, "closed-loop mean think time (only with -arrival off)"),
		seed:       fs.Uint64("seed", 20030208, "simulation seed"),
		horizon:    fs.Uint64("horizon", 250_000_000, "arrival horizon in cycles (250M = 1 simulated second); the run then drains"),
	}
	af.ofl.Register(fs)
	af.hp.Register(fs)
	return af
}

// buildConfig turns the flag surface into a validated topology. The arrival
// rate is a placeholder; each sweep point sets it from its multiplier.
func buildConfig(af *appFlags) (cluster.OpenConfig, error) {
	cfg := cluster.DefaultOpenConfig()
	cfg.Nodes = *af.nodes
	cfg.WorkersPerNode = *af.workers
	cfg.Shards = *af.shards
	cfg.QueueCap = *af.queueCap
	cfg.DeadlineCycles = uint64(*af.deadlineMS * cyclesPerMS)
	lb, err := cluster.ParseLBPolicy(*af.lb)
	if err != nil {
		return cfg, err
	}
	cfg.LB = lb
	if *af.arrivalPat == "off" {
		cfg.ClosedClients = *af.clients
		cfg.ThinkCycles = *af.thinkMS * cyclesPerMS
		return cfg, nil
	}
	pat, err := arrival.ParsePattern(*af.arrivalPat)
	if err != nil {
		return cfg, err
	}
	ac := arrival.Config{Pattern: pat, Rate: cfg.Arrival.Rate}.Defaults()
	if pat == arrival.Flash && ac.FlashAt == 0 {
		// Spike a third of the way in, so the controls see steady state
		// first and the drain after the spike is visible.
		ac.FlashAt = *af.horizon / 3
	}
	cfg.Arrival = ac
	return cfg, nil
}

// loadFaults resolves the -faults spec against the horizon.
func loadFaults(spec string, horizon uint64) (*fault.Schedule, error) {
	switch spec {
	case "":
		return nil, nil
	case "demo":
		return fault.Demo(horizon/5, 3*horizon/5), nil
	case "crash":
		s := &fault.Schedule{Events: []fault.Event{{
			Kind: fault.NodeCrash, At: horizon / 3, Duration: horizon / 6,
			Peer: cluster.NodePeer(0),
		}}}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		return s, nil
	default:
		return fault.LoadSchedule(spec)
	}
}

// parseSweep parses the -sweep list; an empty spec falls back to a single
// point at -offered.
func parseSweep(spec string, offered float64) ([]float64, error) {
	if spec == "" {
		return []float64{offered}, nil
	}
	var mults []float64
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("loadsim: bad sweep multiplier %q", f)
		}
		mults = append(mults, v)
	}
	return mults, nil
}

// point is one finished run of the sweep.
type point struct {
	mult     float64
	controls bool
	stats    cluster.OpenStats
	simSec   float64 // arrival horizon in simulated seconds
	p50, p99 float64 // critical-class latency, ms (0 = class never completed)
	coll     *reqtrace.Collector
}

// goodps is the point's goodput in requests per simulated second.
func (p point) goodps() float64 { return float64(p.stats.Good()) / p.simSec }

// live bundles the optional progress surfaces a run publishes into, plus
// the flight recorder and the (controls, multiplier) cell it rides — one
// cell per sweep, so a dump never mixes load levels.
type live struct {
	hb   *obs.Heartbeat
	insp *obs.Inspector
	rec  *flightrec.Recorder
	// recOn/recMult select the recorded cell: the highest-load controls-on
	// point, matching the -latency selection.
	recOn   bool
	recMult float64
}

// runPoint runs one (multiplier, controls) cell. Each cell gets its own
// injector so fault draws stay comparable across cells, and its own
// collector so reports never mix load levels.
func runPoint(cfg cluster.OpenConfig, mult float64, controlsOn bool, seed, horizon uint64,
	sched *fault.Schedule, newColl func() (*reqtrace.Collector, error), lv live,
	rec *flightrec.Recorder) (point, error) {
	if cfg.ClosedClients == 0 {
		cfg.Arrival.Rate = mult * cfg.Capacity()
	}
	cfg.Controls.Enabled = controlsOn
	s, err := cluster.NewOpen(cfg, seed)
	if err != nil {
		return point{}, err
	}
	if sched != nil {
		s.SetFaults(fault.NewInjector(sched, simrand.New(seed+1)))
	}
	coll, err := newColl()
	if err != nil {
		return point{}, err
	}
	s.SetCollector(coll)
	rec.SetCollector(coll)
	rec.SetSchedule(sched)
	s.SetTick(2_000_000, func(at uint64, sim *cluster.OpenSim) {
		lv.hb.SetCycles(at)
		sec := float64(at) / core.CyclesPerSecond
		st := sim.Stats
		lv.hb.SetTraffic(float64(st.Offered)/sec, float64(st.Offered-st.Shed)/sec,
			float64(st.Shed)/sec)
		if rec != nil {
			rec.Tick(at)
			lvl := 0
			for _, n := range sim.Snapshot(at).Nodes {
				if n.BrownLevel > lvl {
					lvl = n.BrownLevel
				}
			}
			rec.Brownout(at, lvl)
		}
		if lv.insp != nil {
			if buf, err := json.Marshal(sim.Snapshot(at)); err == nil {
				lv.insp.SetOverload(append(buf, '\n'))
			}
		}
	})
	s.Run(horizon)
	lv.hb.Add(1)

	p := point{mult: mult, controls: controlsOn, stats: s.Stats,
		simSec: float64(horizon) / core.CyclesPerSecond, coll: coll}
	crit := criticalClass(cfg.Mix)
	for _, c := range coll.BuildReport().Classes {
		if c.Class == crit && c.Latency.Count > 0 {
			p.p50 = float64(c.Latency.P50) / cyclesPerMS
			p.p99 = float64(c.Latency.P99) / cyclesPerMS
		}
	}
	return p, nil
}

// criticalClass names the priority-0 work class (the one brown-out never
// sheds); its latency is the table's headline quantile.
func criticalClass(mix []cluster.WorkClass) string {
	for _, m := range mix {
		if m.Priority == 0 {
			return m.Name
		}
	}
	return mix[0].Name
}

// runSweep executes every (multiplier, controls) cell and prints the table.
// The returned points are ordered controls-on first, each in sweep order.
func runSweep(w io.Writer, cfg cluster.OpenConfig, mults []float64, modes []bool,
	seed, horizon uint64, sched *fault.Schedule,
	newColl func() (*reqtrace.Collector, error), lv live) ([]point, error) {
	capRate := cfg.Capacity() * core.CyclesPerSecond
	fmt.Fprintf(w, "loadsim: %d nodes x %d workers, %d shards, lb %s, deadline %.1f ms, capacity %.0f req/s\n",
		cfg.Nodes, cfg.WorkersPerNode, cfg.Shards, cfg.LB, float64(cfg.DeadlineCycles)/cyclesPerMS, capRate)
	fmt.Fprintf(w, "%7s %8s %9s %9s %8s %7s %7s %11s %7s %9s %9s\n",
		"xload", "controls", "offered", "complete", "shed", "failed", "late",
		"goodput", "shed%", "p50(ms)", "p99(ms)")
	var pts []point
	for _, on := range modes {
		for _, m := range mults {
			var rec *flightrec.Recorder
			if on == lv.recOn && m == lv.recMult {
				rec = lv.rec
			}
			p, err := runPoint(cfg, m, on, seed, horizon, sched, newColl, lv, rec)
			if err != nil {
				return nil, err
			}
			pts = append(pts, p)
			st := p.stats
			mode := "on"
			if !on {
				mode = "off"
			}
			shedPct := 0.0
			if st.Offered > 0 {
				shedPct = 100 * float64(st.Shed) / float64(st.Offered)
			}
			fmt.Fprintf(w, "%7.2f %8s %9d %9d %8d %7d %7d %9.0f/s %6.1f%% %9.2f %9.2f\n",
				p.mult, mode, st.Offered, st.Completed, st.Shed, st.Failed, st.Late,
				p.goodps(), shedPct, p.p50, p.p99)
		}
	}
	return pts, nil
}

// buildFigure turns the sweep into the goodput-vs-offered-load figure with
// the collapse headline in its notes.
func buildFigure(pts []point, mults []float64) core.Figure {
	f := core.Figure{
		ID:     "loadsim",
		Title:  "Goodput vs offered load (open arrivals)",
		XLabel: "offered load (x capacity)",
		YLabel: "requests/s",
	}
	series := func(on bool, label string, y func(point) float64) {
		s := core.Series{Label: label}
		for _, p := range pts {
			if p.controls == on {
				s.X = append(s.X, p.mult)
				s.Y = append(s.Y, y(p))
			}
		}
		if len(s.X) > 0 {
			f.Series = append(f.Series, s)
		}
	}
	series(true, "goodput, controls on", point.goodps)
	series(false, "goodput, controls off", point.goodps)
	series(true, "shed rate, controls on", func(p point) float64 {
		return float64(p.stats.Shed) / p.simSec
	})

	var peakOn, lastOn, lastOff float64
	haveOn, haveOff := false, false
	for _, p := range pts {
		if p.controls {
			haveOn = true
			if g := p.goodps(); g > peakOn {
				peakOn = g
			}
			if p.mult == mults[len(mults)-1] {
				lastOn = p.goodps()
			}
		} else if p.mult == mults[len(mults)-1] {
			haveOff = true
			lastOff = p.goodps()
		}
	}
	top := mults[len(mults)-1]
	if haveOn && len(mults) > 1 && peakOn > 0 {
		f.Notes = append(f.Notes, fmt.Sprintf(
			"controls on: goodput at %.1fx offered = %.1f%% of peak (%.0f vs %.0f req/s)",
			top, 100*lastOn/peakOn, lastOn, peakOn))
	}
	if haveOn && haveOff && lastOn > 0 {
		f.Notes = append(f.Notes, fmt.Sprintf(
			"controls off at %.1fx offered: goodput %.0f req/s = %.1f%% of the controlled run — congestion collapse",
			top, lastOff, 100*lastOff/lastOn))
	}
	return f
}

// latencyPoint picks the run whose reqtrace report the -latency artifact
// and summary describe: the highest-load controls-on point (the single run,
// when there is no sweep).
func latencyPoint(pts []point) *point {
	var best *point
	for i := range pts {
		p := &pts[i]
		if !p.controls && best != nil {
			continue
		}
		if best == nil || !best.controls || p.mult >= best.mult {
			best = p
		}
	}
	return best
}

func main() {
	af := registerFlags(flag.CommandLine)
	flag.Parse()
	ofl, hp := &af.ofl, &af.hp

	if err := hp.Start(); err != nil {
		fatal(err)
	}
	defer hp.Stop()
	for _, inert := range []struct{ name, val string }{
		{"-trace", ofl.Trace}, {"-metrics", ofl.Metrics},
		{"-profile", ofl.Profile}, {"-attr", ofl.Attr},
	} {
		if inert.val != "" {
			fmt.Fprintf(os.Stderr, "loadsim: %s ignored (queueing-level model, no engine instrumentation)\n", inert.name)
		}
	}

	cfg, err := buildConfig(af)
	if err != nil {
		fatal(err)
	}
	mults, err := parseSweep(*af.sweep, *af.offered)
	if err != nil {
		fatal(err)
	}
	var modes []bool
	switch *af.controls {
	case "on":
		modes = []bool{true}
	case "off":
		modes = []bool{false}
	case "both":
		modes = []bool{true, false}
	default:
		fatal(fmt.Errorf("-controls %q: want on, off, or both", *af.controls))
	}
	sched, err := loadFaults(*af.faults, *af.horizon)
	if err != nil {
		fatal(err)
	}
	newColl := func() (*reqtrace.Collector, error) {
		if c, err := core.NewLatencyCollector(ofl); err != nil || c != nil {
			return c, err
		}
		return reqtrace.NewCollector(reqtrace.Options{}), nil
	}

	start := time.Now()
	hb := obs.StartHeartbeat(os.Stderr, "loadsim", ofl.Heartbeat)
	defer hb.Stop()
	if hb != nil {
		hb.TotalRuns = uint64(len(mults) * len(modes))
	}
	lv := live{hb: hb}
	// The flight recorder rides the highest-load controls-on cell — the same
	// one the -latency report describes. No engine here, so its ring carries
	// only synthesized fault windows; the brown-out and SLO-burn triggers are
	// the useful ones.
	_, lv.rec = flightrec.FromFlags(ofl, "loadsim", nil)
	lv.recOn = modes[0]
	for _, m := range modes {
		if m {
			lv.recOn = true
		}
	}
	lv.recMult = mults[0]
	for _, m := range mults {
		if m > lv.recMult {
			lv.recMult = m
		}
	}
	if ofl.Inspect != "" {
		in, err := obs.StartInspector(ofl.Inspect, "loadsim", hb)
		if err != nil {
			fatal(fmt.Errorf("starting inspector: %w", err))
		}
		defer in.Close()
		lv.insp = in
		lv.rec.SetInspector(in)
		fmt.Fprintf(os.Stderr, "inspector listening on http://%s\n", in.Addr())
	}

	pts, err := runSweep(os.Stdout, cfg, mults, modes, *af.seed, *af.horizon, sched, newColl, lv)
	if err != nil {
		fatal(err)
	}
	hb.Stop()

	fig := buildFigure(pts, mults)
	if len(mults) > 1 {
		fmt.Println()
		report.Render(os.Stdout, fig)
	}
	for _, n := range fig.Notes {
		fmt.Println(n)
	}
	if *af.reportPath != "" {
		w, err := obs.AtomicCreate(*af.reportPath, 0o644)
		if err != nil {
			fatal(err)
		}
		report.Markdown(w, fig)
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}

	if lp := latencyPoint(pts); lp != nil && ofl.LatencyEnabled() {
		fmt.Println()
		fmt.Printf("latency report: %.2fx offered, controls %v\n", lp.mult, lp.controls)
		report.LatencySummary(os.Stdout, lp.coll.BuildReport())
		if ofl.Latency != "" && ofl.Latency != "-" {
			if err := obs.AtomicWriteFile(ofl.Latency, lp.coll.ReportJSON(), 0o644); err != nil {
				fatal(err)
			}
		} else if ofl.Latency == "-" {
			os.Stdout.Write(lp.coll.ReportJSON())
		}
	}
	if s := lv.rec.Summary(); s != "" {
		fmt.Fprintln(os.Stderr, s)
	}
	_ = start
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadsim:", err)
	os.Exit(1)
}
