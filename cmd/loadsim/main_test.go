package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/obs/reqtrace"
)

func parseArgs(t *testing.T, args ...string) *appFlags {
	t.Helper()
	fs := flag.NewFlagSet("loadsim", flag.ContinueOnError)
	af := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return af
}

// TestFlagParity fails when this driver drifts from the shared flag surface:
// every standard observability flag, the host-profile pair, and the driver's
// own flags must all be registered.
func TestFlagParity(t *testing.T) {
	fs := flag.NewFlagSet("loadsim", flag.ContinueOnError)
	registerFlags(fs)
	want := append(obs.StandardFlagNames(), obs.HostProfileFlagNames()...)
	want = append(want, "nodes", "workers", "shards", "queue-cap", "clients",
		"lb", "arrival", "sweep", "controls", "faults", "report",
		"offered", "deadline-ms", "think-ms", "seed", "horizon")
	for _, name := range want {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestParseSweep(t *testing.T) {
	mults, err := parseSweep("0.3, 1,3", 1)
	if err != nil || len(mults) != 3 || mults[0] != 0.3 || mults[2] != 3 {
		t.Fatalf("parseSweep = %v, %v", mults, err)
	}
	if mults, err = parseSweep("", 2.5); err != nil || len(mults) != 1 || mults[0] != 2.5 {
		t.Fatalf("empty sweep did not fall back to -offered: %v, %v", mults, err)
	}
	for _, bad := range []string{"0.3,x", "0", "-1,2"} {
		if _, err := parseSweep(bad, 1); err == nil {
			t.Errorf("sweep %q accepted", bad)
		}
	}
}

func TestLoadFaultsBuiltins(t *testing.T) {
	if s, err := loadFaults("", 100); s != nil || err != nil {
		t.Fatalf("empty spec: %v, %v", s, err)
	}
	s, err := loadFaults("demo", 250_000_000)
	if err != nil || len(s.Events) == 0 {
		t.Fatalf("demo: %v, %v", s, err)
	}
	s, err = loadFaults("crash", 250_000_000)
	if err != nil || len(s.Events) != 1 || s.Events[0].Peer != cluster.NodePeer(0) {
		t.Fatalf("crash: %+v, %v", s, err)
	}
}

func plainColl() (*reqtrace.Collector, error) {
	return reqtrace.NewCollector(reqtrace.Options{}), nil
}

// TestSweepDeterministic: the full sweep — table bytes, figure, and notes —
// is a pure function of the seed, including under a fault schedule.
func TestSweepDeterministic(t *testing.T) {
	af := parseArgs(t)
	cfg, err := buildConfig(af)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 40_000_000
	sched, err := loadFaults("crash", horizon)
	if err != nil {
		t.Fatal(err)
	}
	mults := []float64{0.5, 3}
	run := func() (string, []string) {
		var buf bytes.Buffer
		pts, err := runSweep(&buf, cfg, mults, []bool{true, false}, 7, horizon, sched, plainColl, live{})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), buildFigure(pts, mults).Notes
	}
	tab1, notes1 := run()
	tab2, notes2 := run()
	if tab1 != tab2 {
		t.Fatalf("sweep table not deterministic:\n%s\nvs\n%s", tab1, tab2)
	}
	if strings.Join(notes1, "\n") != strings.Join(notes2, "\n") {
		t.Fatalf("figure notes not deterministic: %v vs %v", notes1, notes2)
	}
	if len(notes1) == 0 {
		t.Fatal("sweep produced no headline notes")
	}
}

// TestArrivalOffPassivity: with -arrival off the driver runs the plain
// closed-loop cluster model — its stats are bit-identical to a directly
// built closed-loop sim, and the -offered multiplier has no effect. The
// open-arrival machinery must be completely inert.
func TestArrivalOffPassivity(t *testing.T) {
	af := parseArgs(t, "-arrival", "off")
	cfg, err := buildConfig(af)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ClosedClients != *af.clients {
		t.Fatalf("closed-loop population %d, want %d", cfg.ClosedClients, *af.clients)
	}
	const horizon = 100_000_000
	p1, err := runPoint(cfg, 1, true, 11, horizon, nil, plainColl, live{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := runPoint(cfg, 3, true, 11, horizon, nil, plainColl, live{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1.stats != p3.stats {
		t.Fatalf("-offered leaked into a closed-loop run:\n%+v\n%+v", p1.stats, p3.stats)
	}

	// Ground truth: the seed closed-loop model, built without the driver.
	direct := cluster.DefaultOpenConfig()
	direct.ClosedClients = cfg.ClosedClients
	direct.ThinkCycles = cfg.ThinkCycles
	s, err := cluster.NewOpen(direct, 11)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(horizon)
	if p1.stats != s.Stats {
		t.Fatalf("driver closed-loop run diverged from the direct model:\n%+v\n%+v", p1.stats, s.Stats)
	}
}

// TestBuildConfigFlash: the flash pattern gets its spike anchored inside
// the horizon.
func TestBuildConfigFlash(t *testing.T) {
	af := parseArgs(t, "-arrival", "flash")
	cfg, err := buildConfig(af)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Arrival.FlashAt == 0 || cfg.Arrival.FlashAt >= *af.horizon {
		t.Fatalf("flash spike at %d outside horizon %d", cfg.Arrival.FlashAt, *af.horizon)
	}
}
