// Command cachesweep runs the paper's uniprocessor trace-driven cache-size
// sweeps (the Simics+Sumo methodology behind Figures 12 and 13) and prints
// instruction- and data-cache miss rates per configuration.
//
// Usage:
//
//	cachesweep [-ops N] [-seed N]
//	           [-trace FILE] [-metrics FILE] [-profile FILE] [-heartbeat DUR]
//	           [-attr FILE] [-attr-exact] [-attr-top N]
//
// The sweeper is purely functional (no timing model), so observability
// artifacts use the instruction count as the clock: trace timestamps are
// instructions (~cycles at the uniprocessor's ~1 CPI) and the folded
// profile attributes instructions to code components. -attr attributes at
// the reference level (every line touched), not the miss level: there is
// no coherence protocol on one processor, so the report's value here is
// the hot-object table, not the sharing patterns.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	ops := flag.Int("ops", 600, "measured operations per thread")
	warm := flag.Int("warm", 120, "warm-up operations per thread")
	seed := flag.Uint64("seed", 20030208, "simulation seed")
	mode := flag.String("mode", "size", "swept dimension: size, assoc, or block")
	fixed := flag.Int("fixed", 256<<10, "cache size in bytes for assoc/block modes")
	var ofl obs.Flags
	ofl.Register(flag.CommandLine)
	var hp obs.HostProfile
	hp.Register(flag.CommandLine)
	flag.Parse()

	if err := hp.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer hp.Stop()

	if ofl.LatencyEnabled() {
		// The sweeper has no timing model, so there is no request latency to
		// measure; accept-and-warn keeps shared flag sets usable across tools.
		fmt.Fprintln(os.Stderr, "cachesweep: -latency/-slo ignored (trace-driven sweep has no timing model)")
		ofl.Latency, ofl.SLO = "", ""
	}
	if ofl.Flight != "on" && ofl.FlightEnabled() {
		// Same accept-and-warn policy for the flight recorder: the sweeper has
		// no run loop (and no simulated clock) to tick a black box with.
		fmt.Fprintln(os.Stderr, "cachesweep: -flight ignored (trace-driven sweep has no run loop to record)")
	}

	start := time.Now()
	hb := obs.StartHeartbeat(os.Stderr, "cachesweep", ofl.Heartbeat)
	defer hb.Stop() // Stop is idempotent: this flushes a final line even on early return
	o := core.SweepOpts{WarmupOps: *warm, MeasureOps: *ops, Seed: *seed, Progress: hb}

	// The workload configurations run concurrently, each with its own
	// observer; artifacts merge at the end, in creation order.
	var mu sync.Mutex
	var observers []*obs.Observer
	var labels []string
	if ofl.Enabled() {
		o.Observe = func(label string) *obs.Observer {
			mu.Lock()
			defer mu.Unlock()
			ob := ofl.NewObserver(len(observers))
			observers = append(observers, ob)
			labels = append(labels, label)
			return ob
		}
	}
	var cs *core.CacheSweeps
	var dim string
	switch *mode {
	case "size":
		cs = core.RunCacheSweeps(o)
		dim = "size"
	case "assoc":
		cs = core.RunGeometrySweeps(o, core.SweepAssoc, *fixed)
		dim = "ways"
	case "block":
		cs = core.RunGeometrySweeps(o, core.SweepBlock, *fixed)
		dim = "block"
	default:
		fmt.Println("unknown -mode; use size, assoc, or block")
		return
	}

	fmt.Printf("misses per 1000 instructions, sweeping %s\n", dim)
	fmt.Printf("%10s", dim)
	for _, r := range cs.Results {
		fmt.Printf(" | %10s-I %10s-D", r.Label, r.Label)
	}
	fmt.Println()
	for i := range cs.Results[0].ICurve {
		switch *mode {
		case "assoc":
			fmt.Printf("%9dw", 1<<uint(i))
		case "block":
			fmt.Printf("%9dB", 16<<uint(i))
		default:
			fmt.Printf("%8dKB", cs.Results[0].ICurve[i].SizeBytes/1024)
		}
		for _, r := range cs.Results {
			fmt.Printf(" | %12.3f %12.3f", r.ICurve[i].MissesPer1000, r.DCurve[i].MissesPer1000)
		}
		fmt.Println()
	}
	hb.Stop()

	if ofl.Enabled() {
		m := &obs.Manifest{
			Command: "cachesweep",
			Args:    os.Args[1:],
			Git:     obs.GitDescribe(),
			Started: start,
			Seeds:   []uint64{*seed},
			Opts: map[string]any{
				"warmup_ops": *warm, "measure_ops": *ops,
				"mode": *mode, "fixed_bytes": *fixed,
			},
			WallSeconds: time.Since(start).Seconds(),
		}
		if err := ofl.WriteArtifacts(labels, observers, nil, m); err != nil {
			fmt.Fprintf(os.Stderr, "writing observability artifacts: %v\n", err)
			os.Exit(1)
		}
	}
}
