// Command ecperfsim runs the ECperf-like 3-tier deployment — driver,
// application server (the measured machine), database, and supplier
// emulator — and prints the application-server-side measurements the paper
// collected, plus remote-tier utilization.
//
// Usage:
//
//	ecperfsim [-p processors] [-oir rate] [-seed N] [-measure cycles]
//	          [-trace FILE] [-metrics FILE] [-profile FILE] [-heartbeat DUR]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	procs := flag.Int("p", 8, "processor-set size on the app server (1-16)")
	oir := flag.Int("oir", 10, "orders injection rate (scale factor)")
	seed := flag.Uint64("seed", 20030208, "simulation seed")
	warmup := flag.Uint64("warmup", 12_000_000, "warm-up cycles (excluded)")
	measure := flag.Uint64("measure", 50_000_000, "measurement window in cycles")
	var ofl obs.Flags
	ofl.Register(flag.CommandLine)
	flag.Parse()

	sys := core.BuildSystem(core.SystemParams{
		Kind:       core.ECperf,
		Processors: *procs,
		Scale:      *oir,
		Seed:       *seed,
	})
	var ob *obs.Observer
	if ofl.Enabled() {
		ob = ofl.NewObserver(0)
	}
	start := time.Now()
	hb := obs.StartHeartbeat(os.Stderr, "ecperfsim", ofl.Heartbeat)
	eng := sys.Engine
	delta := core.ObserveRun(sys, ob, hb, *warmup, *measure)
	hb.Stop()
	res := eng.Results()

	seconds := float64(*measure) / core.CyclesPerSecond
	fmt.Printf("ECperf: %d processors, OIR %d, %.0f ms measured\n", *procs, *oir, seconds*1000)
	fmt.Printf("throughput        %10.0f BBops/min (%0.0f/s)\n",
		60*float64(res.BusinessOps)/seconds, float64(res.BusinessOps)/seconds)
	for tag, n := range res.OpsByTag {
		line := fmt.Sprintf("  %-15s %10d", tag, n)
		if h := res.LatencyByTag[tag]; h != nil && h.Count() > 0 {
			line += fmt.Sprintf("   p50 %5.2fms  p90 %5.2fms",
				1000*float64(h.Quantile(0.5))/core.CyclesPerSecond,
				1000*float64(h.Quantile(0.9))/core.CyclesPerSecond)
		}
		fmt.Println(line)
	}
	total := float64(res.Modes.Total())
	fmt.Printf("modes: user %.1f%%  system %.1f%%  i/o %.1f%%  idle %.1f%%  gc-idle %.1f%%\n",
		100*float64(res.Modes.User)/total, 100*float64(res.Modes.System)/total,
		100*float64(res.Modes.IOWait)/total, 100*float64(res.Modes.Idle)/total,
		100*float64(res.Modes.GCIdle)/total)
	c := res.CPU
	if c.Instructions > 0 {
		in := float64(c.Instructions)
		fmt.Printf("CPI %.3f (other %.3f, i-stall %.3f, d-stall %.3f); %.0f instructions/BBop\n",
			float64(c.Total())/in, float64(c.BaseCycles)/in,
			float64(c.IStallCycles)/in, float64(c.DStall())/in,
			in/float64(res.BusinessOps))
	}
	bs := sys.Hier.Bus().Stats
	fmt.Printf("bus: c2c ratio %.1f%% (%d transfers, %d from memory)\n",
		100*bs.C2CRatio(), bs.C2CTransfers, bs.MemTransfers)
	fmt.Printf("object cache: hit ratio %.1f%% (%d entries)\n",
		100*sys.EC.Cache().HitRatio(), sys.EC.Cache().Len())
	fmt.Printf("remote tiers: database %.0f%% utilized, supplier %.0f%%\n",
		100*sys.DB.Utilization(), 100*sys.Supplier.Utilization())
	fmt.Printf("gc: %d collections, %.1f%% of wall time\n",
		res.GCCount, 100*float64(res.GCWall)/float64(*measure))

	if ofl.Enabled() {
		m := &obs.Manifest{
			Command: "ecperfsim",
			Args:    os.Args[1:],
			Git:     obs.GitDescribe(),
			Started: start,
			Seeds:   []uint64{*seed},
			Opts: map[string]any{
				"processors": *procs, "oir": *oir,
				"warmup_cycles": *warmup, "measure_cycles": *measure,
			},
			WallSeconds: time.Since(start).Seconds(),
		}
		if err := ofl.WriteArtifacts([]string{"ECperf"}, []*obs.Observer{ob}, []*obs.Snapshot{delta}, m); err != nil {
			fmt.Fprintf(os.Stderr, "writing observability artifacts: %v\n", err)
			os.Exit(1)
		}
	}
}
