// Command ecperfsim runs the ECperf-like 3-tier deployment — driver,
// application server (the measured machine), database, and supplier
// emulator — and prints the application-server-side measurements the paper
// collected, plus remote-tier utilization.
//
// Usage:
//
//	ecperfsim [-p processors] [-oir rate] [-seed N] [-measure cycles]
//	          [-memmodel fixed|loaded]
//	          [-trace FILE] [-metrics FILE] [-profile FILE] [-heartbeat DUR]
//	          [-attr FILE] [-attr-exact] [-attr-top N] [-inspect ADDR]
//	          [-latency FILE] [-slo SPEC] [-latency-interval cycles]
//	          [-faults FILE|demo] [-fault-bin cycles] [-fault-report FILE]
//	          [-watchdog cycles]
//	          [-checkpoint FILE] [-checkpoint-every cycles] [-resume FILE]
//
// With -latency and/or -slo, every business transaction is traced end to
// end through the tiers and decomposed into phases (CPU, memory stall, lock
// wait, network, DB queue/service, GC pause); per-class HDR histograms, the
// latency time series, and SLO verdicts print after the standard report and
// land in the -latency JSON artifact. Combined with -faults, the latency
// collector rides the *faulted* run, so the report shows the degradation
// and SLO burn around each fault window.
//
// With -faults, the run becomes a robustness experiment: the same seed is
// measured clean and with the fault schedule armed, and the tool prints the
// throughput-under-fault curve, per-window recovery times, and the
// retry/breaker/shed counters. "demo" uses the built-in schedule covering
// every fault kind.
//
// With -checkpoint, a resumable checkpoint is written at the end of the run
// (and every -checkpoint-every cycles); -resume continues a checkpointed
// run — the resumed run is bit-identical to one that never stopped.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/obs/reqtrace"
	"repro/internal/report"
)

// appFlags is the full flag surface; registerFlags keeps it testable (the
// flag-parity test registers onto a scratch FlagSet).
type appFlags struct {
	procs, oir            *int
	seed, warmup, measure *uint64
	faults                *string
	faultBin              *uint64
	faultReport           *string
	watchdog              *uint64
	ckptPath, resume      *string
	ckptEvery             *uint64
	memmodel              *string
	ofl                   obs.Flags
	hp                    obs.HostProfile
}

func registerFlags(fs *flag.FlagSet) *appFlags {
	af := &appFlags{
		procs:       fs.Int("p", 8, "processor-set size on the app server (1-16)"),
		oir:         fs.Int("oir", 10, "orders injection rate (scale factor)"),
		seed:        fs.Uint64("seed", 20030208, "simulation seed"),
		warmup:      fs.Uint64("warmup", 12_000_000, "warm-up cycles (excluded)"),
		measure:     fs.Uint64("measure", 50_000_000, "measurement window in cycles"),
		faults:      fs.String("faults", "", "fault schedule JSON file, or \"demo\" for the built-in schedule"),
		faultBin:    fs.Uint64("fault-bin", 4_000_000, "throughput sampling bin for -faults, in cycles"),
		faultReport: fs.String("fault-report", "", "also write the -faults figure (markdown) to FILE"),
		watchdog:    fs.Uint64("watchdog", 0, "abort when the run makes no progress for N simulated cycles (0 = off)"),
		ckptPath:    fs.String("checkpoint", "", "write a resumable checkpoint to FILE"),
		ckptEvery:   fs.Uint64("checkpoint-every", 0, "checkpoint cadence in cycles (0 = only at the end)"),
		resume:      fs.String("resume", "", "resume from checkpoint FILE (run parameters come from the checkpoint)"),
		memmodel:    fs.String("memmodel", "fixed", "memory timing model: fixed (unloaded scalar latencies) or loaded (bandwidth-latency curve)"),
	}
	af.ofl.Register(fs)
	af.hp.Register(fs)
	return af
}

func main() {
	af := registerFlags(flag.CommandLine)
	flag.Parse()
	procs, oir, seed, warmup, measure := af.procs, af.oir, af.seed, af.warmup, af.measure
	faults, faultBin, faultReport := af.faults, af.faultBin, af.faultReport
	watchdog, ckptPath, ckptEvery, resume := af.watchdog, af.ckptPath, af.ckptEvery, af.resume
	ofl, hp := &af.ofl, &af.hp
	memModel, err := memsys.ParseMemModel(*af.memmodel)
	if err != nil {
		fatal(err)
	}

	if err := hp.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer hp.Stop()

	var ob *obs.Observer
	if ofl.Enabled() {
		ob = ofl.NewObserver(0)
	}
	ob, rec := flightrec.FromFlags(ofl, "ecperfsim", ob)
	rt, err := core.NewLatencyCollector(ofl)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	hb := obs.StartHeartbeat(os.Stderr, "ecperfsim", ofl.Heartbeat)
	// Stop is idempotent: the deferred call flushes a final progress line
	// even when a fault/watchdog path exits early.
	defer hb.Stop()
	if ofl.Inspect != "" {
		in, err := obs.StartInspector(ofl.Inspect, "ecperfsim", hb)
		if err != nil {
			fatal(fmt.Errorf("starting inspector: %w", err))
		}
		defer in.Close()
		ob.Inspect = in
		rec.SetInspector(in)
		fmt.Fprintf(os.Stderr, "inspector listening on http://%s\n", in.Addr())
	}

	var plan *core.CheckpointPlan
	if *ckptPath != "" {
		plan = &core.CheckpointPlan{Path: *ckptPath, Every: *ckptEvery, Command: "ecperfsim"}
	}

	if *faults != "" {
		runFaultExperiment(*faults, *procs, *seed, *warmup, *measure, *faultBin, *faultReport, memModel, ob, rt, rec, hb, ofl, start)
		return
	}

	var sys *core.System
	var delta *obs.Snapshot
	if *resume != "" {
		if rt != nil {
			fmt.Fprintln(os.Stderr, "ecperfsim: -latency/-slo ignored with -resume (spans cannot be reconstructed mid-run)")
			rt = nil
		}
		cp, err := core.LoadCheckpoint(*resume)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "resuming %s run at cycle %d (verifying replay)\n", cp.Params.Kind, cp.Cycle)
		sys, err = core.ResumeRun(cp, hb, *measure, plan)
		if err != nil {
			fatal(err)
		}
		*warmup = cp.Warmup
	} else {
		sys = core.BuildSystem(core.SystemParams{
			Kind:           core.ECperf,
			Processors:     *procs,
			Scale:          *oir,
			Seed:           *seed,
			WatchdogCycles: *watchdog,
			MemModel:       memModel,
		})
		core.AttachLatency(sys, ob, rt)
		core.AttachFlight(sys, rec)
		var err error
		delta, err = core.ObserveRunCheckpointed(sys, ob, hb, *warmup, *measure, plan)
		if err != nil {
			fatal(err)
		}
	}
	hb.Stop()
	if wd := sys.Engine.WatchdogTripped(); wd != nil {
		fmt.Fprintf(os.Stderr, "watchdog tripped:\n%s\n", wd)
		os.Exit(2)
	}
	eng := sys.Engine
	res := eng.Results()

	seconds := float64(*measure) / core.CyclesPerSecond
	fmt.Printf("ECperf: %d processors, OIR %d, %.0f ms measured\n",
		sys.Params.Processors, sys.Params.Scale, seconds*1000)
	fmt.Printf("throughput        %10.0f BBops/min (%0.0f/s)\n",
		60*float64(res.BusinessOps)/seconds, float64(res.BusinessOps)/seconds)
	tags := make([]string, 0, len(res.OpsByTag))
	for tag := range res.OpsByTag {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		line := fmt.Sprintf("  %-15s %10d", tag, res.OpsByTag[tag])
		if h := res.LatencyByTag[tag]; h != nil && h.Count() > 0 {
			line += fmt.Sprintf("   p50 %5.2fms  p90 %5.2fms",
				1000*float64(h.Quantile(0.5))/core.CyclesPerSecond,
				1000*float64(h.Quantile(0.9))/core.CyclesPerSecond)
		}
		fmt.Println(line)
	}
	total := float64(res.Modes.Total())
	fmt.Printf("modes: user %.1f%%  system %.1f%%  i/o %.1f%%  idle %.1f%%  gc-idle %.1f%%\n",
		100*float64(res.Modes.User)/total, 100*float64(res.Modes.System)/total,
		100*float64(res.Modes.IOWait)/total, 100*float64(res.Modes.Idle)/total,
		100*float64(res.Modes.GCIdle)/total)
	c := res.CPU
	if c.Instructions > 0 {
		in := float64(c.Instructions)
		fmt.Printf("CPI %.3f (other %.3f, i-stall %.3f, d-stall %.3f); %.0f instructions/BBop\n",
			float64(c.Total())/in, float64(c.BaseCycles)/in,
			float64(c.IStallCycles)/in, float64(c.DStall())/in,
			in/float64(res.BusinessOps))
	}
	bs := sys.Hier.Bus().Stats
	fmt.Printf("bus: c2c ratio %.1f%% (%d transfers, %d from memory)\n",
		100*bs.C2CRatio(), bs.C2CTransfers, bs.MemTransfers)
	if ls, ok := sys.Hier.LoadSnapshot(); ok {
		// Only under -memmodel loaded, keeping fixed-mode stdout byte-stable.
		fmt.Printf("memmodel loaded: util %.2f  mem x%.2f  c2c x%.2f  extra stall %d cycles  interventions %d\n",
			ls.Util, ls.MemMult, ls.C2CMult, ls.MemExtraCycles+ls.C2CExtraCycles, ls.Interventions)
	}
	fmt.Printf("object cache: hit ratio %.1f%% (%d entries)\n",
		100*sys.EC.Cache().HitRatio(), sys.EC.Cache().Len())
	if sys.DB != nil {
		fmt.Printf("remote tiers: database %.0f%% utilized, supplier %.0f%%\n",
			100*sys.DB.Utilization(), 100*sys.Supplier.Utilization())
	}
	fmt.Printf("gc: %d collections, %.1f%% of wall time\n",
		res.GCCount, 100*float64(res.GCWall)/float64(*measure))
	if ckpt := *ckptPath; ckpt != "" {
		fmt.Printf("checkpoint: saved to %s (resume with -resume %s)\n", ckpt, ckpt)
	}
	if ob != nil && ob.Attr != nil {
		fmt.Println()
		report.AttrSummary(os.Stdout, ob.Attr.BuildReport(ofl.AttrTop))
	}
	if rt != nil {
		fmt.Println()
		report.LatencySummary(os.Stdout, rt.BuildReport())
	}

	if ofl.Enabled() {
		m := &obs.Manifest{
			Command: "ecperfsim",
			Args:    os.Args[1:],
			Git:     obs.GitDescribe(),
			Started: start,
			Seeds:   []uint64{*seed},
			Opts: map[string]any{
				"processors": sys.Params.Processors, "oir": sys.Params.Scale,
				"warmup_cycles": *warmup, "measure_cycles": *measure,
			},
			WallSeconds: time.Since(start).Seconds(),
		}
		if err := ofl.WriteArtifacts([]string{"ECperf"}, []*obs.Observer{ob}, []*obs.Snapshot{delta}, m); err != nil {
			fatal(fmt.Errorf("writing observability artifacts: %w", err))
		}
	}
	if s := rec.Summary(); s != "" {
		fmt.Fprintln(os.Stderr, s)
	}
}

// runFaultExperiment is the -faults mode: a paired clean/faulted measurement
// rendered as the throughput-under-fault curve. rt, when non-nil, collects
// request latency on the faulted run.
func runFaultExperiment(spec string, procs int, seed, warmup, measure, bin uint64, reportPath string, memModel memsys.MemModel, ob *obs.Observer, rt *reqtrace.Collector, rec *flightrec.Recorder, hb *obs.Heartbeat, ofl *obs.Flags, start time.Time) {
	var sched *fault.Schedule
	if spec == "demo" {
		sched = fault.Demo(warmup, measure)
	} else {
		var err error
		sched, err = fault.LoadSchedule(spec)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("fault schedule (%d events):\n", len(sched.Events))
	for _, e := range sched.Events {
		fmt.Printf("  %s\n", e)
	}

	o := core.FaultRunOpts{
		Processors:    procs,
		Seed:          seed,
		MemModel:      memModel,
		Schedule:      sched,
		WarmupCycles:  warmup,
		MeasureCycles: measure,
		BinCycles:     bin,
		Observer:      ob,
		Progress:      hb,
		Latency:       rt,
		Flight:        rec,
	}
	r := core.RunFaultExperiment(o)
	hb.Stop()
	f := core.FaultFigure(r)
	report.Render(os.Stdout, f)
	if rt != nil {
		fmt.Println()
		report.LatencySummary(os.Stdout, rt.BuildReport())
	}

	if reportPath != "" {
		af, err := obs.AtomicCreate(reportPath, 0o644)
		if err != nil {
			fatal(err)
		}
		report.Markdown(af, f)
		if err := af.Close(); err != nil {
			fatal(err)
		}
	}

	if ofl.Enabled() {
		m := &obs.Manifest{
			Command: "ecperfsim -faults",
			Args:    os.Args[1:],
			Git:     obs.GitDescribe(),
			Started: start,
			Seeds:   []uint64{seed},
			Opts: map[string]any{
				"processors": procs, "schedule": spec,
				"warmup_cycles": warmup, "measure_cycles": measure, "bin_cycles": bin,
			},
			WallSeconds: time.Since(start).Seconds(),
		}
		var snap *obs.Snapshot
		if ob != nil && ob.Registry != nil {
			snap = ob.Registry.Snapshot()
		}
		if err := ofl.WriteArtifacts([]string{"ECperf-faulted"}, []*obs.Observer{ob}, []*obs.Snapshot{snap}, m); err != nil {
			fatal(fmt.Errorf("writing observability artifacts: %w", err))
		}
	}
	if s := rec.Summary(); s != "" {
		fmt.Fprintln(os.Stderr, s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ecperfsim:", err)
	os.Exit(1)
}
