// Command perfcheck is the host-performance regression harness: it runs a
// pinned set of benchmarks plus end-to-end wall-clock measurements of the
// figures pipeline, records the results as the next BENCH_<n>.json in the
// series, and compares both ns/op and allocs/op against a committed
// baseline with tolerance gates, so a change that quietly slows the
// simulator down — or quietly re-inflates its allocation rate — fails CI
// instead of landing.
//
// Usage:
//
//	go run ./cmd/perfcheck                  # run, write next BENCH_<n>.json, gate vs baseline
//	go run ./cmd/perfcheck -update          # refresh BENCH_baseline.json (new machine or accepted change)
//	go run ./cmd/perfcheck -full            # also gate the full-fidelity figures run (slow; nightly/manual)
//	go run ./cmd/perfcheck -count 5 -tol 0.5
//
// The pinned set mixes macro benchmarks (full figure pipelines, dominated by
// the simulator's end-to-end hot path) with bus-level micro benchmarks that
// isolate the snooping machinery and the HDR-histogram record/merge path the
// latency collector leans on. Results are min-of-count: the minimum is the
// least noisy estimator on a shared machine.
//
// On top of the go-test benchmarks, perfcheck times the figures binary end
// to end: `figures -quick` always, the full-fidelity run with -full. These
// wall-clock pseudo-benchmarks (keys "e2e:FiguresQuick", "e2e:FiguresFull")
// gate exactly like ns/op, catching regressions the microbenchmarks can't
// see — scheduling stalls, per-figure setup cost, GC pressure from the
// drivers themselves.
//
// Each run appends to the BENCH_<n>.json history rather than overwriting,
// and rewrites BENCH_TREND.md, a markdown table of every pinned
// benchmark's ns/op and allocs/op across the recorded history.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obsdiff"
)

// pinnedBench is the default benchmark selection, chosen to cover the
// simulator's perf-critical layers: the figure pipelines (engine + memory
// system + generators), the local-hit fast path, and the snoop-heavy bus
// patterns the duplicate-tag filter exists for, and the loaded-latency hot
// path (curve lookup + utilization-window update) every bus transaction pays
// under -memmodel loaded.
const pinnedBench = "^(BenchmarkFig08C2CRatio|BenchmarkFig13DCacheMissRate|BenchmarkFig16SharedCaches|" +
	"BenchmarkReadLocalHit|BenchmarkMigratoryWrite16Nodes|BenchmarkReadSharedGetS16Nodes|" +
	"BenchmarkHDRRecord|BenchmarkHDRMerge|BenchmarkCurveLookup|BenchmarkLoadTrackerRecord)$"

// E2E pseudo-benchmark keys: wall-clock timings of the figures binary.
const (
	e2eQuickKey = "e2e:FiguresQuick"
	e2eFullKey  = "e2e:FiguresFull"
)

// Result is one benchmark's summary, min across runs. For the e2e
// pseudo-benchmarks NsPerOp is the whole run's wall clock in nanoseconds.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp *uint64 `json:"allocs_per_op,omitempty"`
}

// Report is the BENCH_<n>.json document.
type Report struct {
	Note       string            `json:"note,omitempty"`
	Count      int               `json:"count"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\S+) ns/op(.*)$`)
var allocsField = regexp.MustCompile(`(\d+) allocs/op`)

func main() {
	bench := flag.String("bench", pinnedBench, "benchmark regex passed to go test -bench")
	pkgs := flag.String("pkgs", ".,./internal/coherence,./internal/memsys,./internal/obs", "comma-separated packages to benchmark")
	count := flag.Int("count", 3, "runs per benchmark; the minimum is kept")
	tol := flag.Float64("tol", 0.30, "allowed fractional ns/op (and wall-clock) regression vs baseline")
	allocTol := flag.Float64("alloc-tol", 0.10, "allowed fractional allocs/op regression vs baseline")
	out := flag.String("out", "", "result file to write (default: next unused BENCH_<n>.json)")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file to gate against")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	note := flag.String("note", "", "free-form note recorded in the result file")
	e2e := flag.Bool("e2e", true, "measure figures -quick end-to-end wall clock")
	e2eCount := flag.Int("e2e-count", 2, "end-to-end runs per configuration; the minimum is kept")
	full := flag.Bool("full", false, "also measure the full-fidelity figures run (slow; nightly/manual)")
	trend := flag.String("trend", "BENCH_TREND.md", "markdown trend table to (re)write; empty disables")
	flag.Parse()

	rep := Report{Note: *note, Count: *count, Benchmarks: map[string]Result{}}
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		if err := runPkg(pkg, *bench, *count, rep.Benchmarks); err != nil {
			fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
			os.Exit(1)
		}
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "perfcheck: no benchmarks matched")
		os.Exit(1)
	}

	if *e2e {
		if err := runE2E(&rep, *e2eCount, *full); err != nil {
			fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
			os.Exit(1)
		}
	}

	outPath := *out
	if outPath == "" {
		outPath = nextBenchPath()
	}
	writeJSON(outPath, rep)
	fmt.Printf("wrote %s (%d benchmarks, min of %d runs)\n", outPath, len(rep.Benchmarks), *count)

	if *trend != "" {
		if err := writeTrend(*trend, *baselinePath, outPath, rep); err != nil {
			fmt.Fprintf(os.Stderr, "perfcheck: trend table: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *trend)
	}

	if *update {
		writeJSON(*baselinePath, rep)
		fmt.Printf("baseline %s updated\n", *baselinePath)
		// Regenerate the trend so its baseline column reflects the pin
		// that was just written, not the one it replaced.
		if *trend != "" {
			if err := writeTrend(*trend, *baselinePath, outPath, rep); err != nil {
				fmt.Fprintf(os.Stderr, "perfcheck: trend table: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}

	base, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: no baseline (%v); run with -update to create one\n", err)
		os.Exit(1)
	}
	var baseRep Report
	if err := json.Unmarshal(base, &baseRep); err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: bad baseline: %v\n", err)
		os.Exit(1)
	}

	failed := false
	for _, b := range sortedKeys(baseRep.Benchmarks) {
		cur, ok := rep.Benchmarks[b]
		if !ok {
			// The e2e measurements are opt-out (-e2e=false) or opt-in
			// (-full), so their absence from a run is a configuration, not
			// a lost benchmark.
			if strings.HasPrefix(b, "e2e:") {
				fmt.Printf("skip %-40s not measured this run\n", b)
				continue
			}
			fmt.Printf("FAIL %-40s in baseline but not in this run\n", b)
			failed = true
			continue
		}
		bl := baseRep.Benchmarks[b]
		ratio := cur.NsPerOp / bl.NsPerOp
		status := "ok  "
		if ratio > 1+*tol {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-40s %12.1f ns/op  baseline %12.1f  (%+.1f%%)\n",
			status, b, cur.NsPerOp, bl.NsPerOp, (ratio-1)*100)
		// Alloc gate: allocation counts are near-deterministic, so they get
		// a tighter relative tolerance plus a small absolute slack (tiny
		// counts jitter by a few allocations of runtime noise).
		if bl.AllocsPerOp != nil && cur.AllocsPerOp != nil && *bl.AllocsPerOp > 0 {
			limit := uint64(float64(*bl.AllocsPerOp)*(1+*allocTol)) + 16
			st := "ok  "
			if *cur.AllocsPerOp > limit {
				st = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-40s %12d allocs/op  baseline %12d (limit %d)\n",
				st, b, *cur.AllocsPerOp, *bl.AllocsPerOp, limit)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "perfcheck: regression beyond tolerance (ns/op %.0f%%, allocs/op %.0f%%)\n",
			*tol*100, *allocTol*100)
		emitTriage(*baselinePath, outPath)
		os.Exit(1)
	}
}

// emitTriage runs the obsdiff engine over baseline-vs-current when the gate
// fails, so a red CI run carries its own ranked triage (PERF_TRIAGE.md)
// instead of just an exit code. Triage is best-effort: a diff failure never
// masks the gate failure.
func emitTriage(baselinePath, outPath string) {
	rep, err := obsdiff.DiffFiles(baselinePath, outPath, obsdiff.Options{Top: 25})
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: triage diff failed: %v\n", err)
		return
	}
	if err := obs.AtomicWriteFile("PERF_TRIAGE.md", rep.Markdown(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: triage write failed: %v\n", err)
		return
	}
	fmt.Fprintln(os.Stderr, "perfcheck: wrote PERF_TRIAGE.md; top regressions:")
	for i, d := range rep.TopDeltas(5) {
		fmt.Fprintf(os.Stderr, "  %d. %-40s %+.1f%%\n", i+1, d.Key, d.Rel*100)
	}
}

// nextBenchPath returns the first unused BENCH_<n>.json name, so every run
// extends the recorded history instead of overwriting the last result.
func nextBenchPath() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

// runE2E builds the figures binary once and times it end to end: -quick
// always, the full-fidelity run when full is set. Minimum of e2eCount runs,
// recorded in wall-clock nanoseconds under the e2e: pseudo-benchmark keys.
func runE2E(rep *Report, e2eCount int, full bool) error {
	dir, err := os.MkdirTemp("", "perfcheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "figures")
	build := exec.Command("go", "build", "-o", bin, "./cmd/figures")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building figures: %w", err)
	}

	measure := func(key string, args ...string) error {
		best := 0.0
		for i := 0; i < e2eCount; i++ {
			cmd := exec.Command(bin, args...)
			cmd.Stdout = nil // discard: only wall clock matters here
			cmd.Stderr = nil
			start := time.Now()
			if err := cmd.Run(); err != nil {
				return fmt.Errorf("%s %s: %w", bin, strings.Join(args, " "), err)
			}
			if secs := time.Since(start).Seconds(); i == 0 || secs < best {
				best = secs
			}
		}
		rep.Benchmarks[key] = Result{NsPerOp: best * 1e9}
		fmt.Printf("%s: %.2fs (min of %d)\n", key, best, e2eCount)
		return nil
	}

	if err := measure(e2eQuickKey, "-quick"); err != nil {
		return err
	}
	if full {
		if err := measure(e2eFullKey); err != nil {
			return err
		}
	}
	return nil
}

// trendFile is one BENCH_*.json in the recorded history.
type trendFile struct {
	label string
	rep   Report
}

// writeTrend rewrites the markdown trend table from the baseline, every
// numbered BENCH_<n>.json on disk, and the current run (which is already
// among the numbered files unless -out pointed elsewhere).
func writeTrend(path, baselinePath, outPath string, cur Report) error {
	var files []trendFile
	if rep, err := readReport(baselinePath); err == nil {
		files = append(files, trendFile{"baseline", rep})
	}
	names, _ := filepath.Glob("BENCH_*.json")
	var nums []int
	byNum := map[int]string{}
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(name), "BENCH_%d.json", &n); err == nil {
			nums = append(nums, n)
			byNum[n] = name
		}
	}
	sort.Ints(nums)
	seenCur := false
	for _, n := range nums {
		rep, err := readReport(byNum[n])
		if err != nil {
			continue
		}
		files = append(files, trendFile{strconv.Itoa(n), rep})
		seenCur = seenCur || byNum[n] == outPath
	}
	if !seenCur {
		files = append(files, trendFile{"current", cur})
	}

	// Row set: every benchmark that appears anywhere in the history.
	rows := map[string]bool{}
	for _, f := range files {
		for k := range f.rep.Benchmarks {
			rows[k] = true
		}
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var b strings.Builder
	b.WriteString("# Host-performance trend\n\n")
	b.WriteString("Min-of-count results per pinned benchmark across the recorded\n")
	b.WriteString("BENCH_*.json history (oldest first). Cells are time/op with\n")
	b.WriteString("allocs/op in parentheses where recorded; `e2e:` rows are whole\n")
	b.WriteString("figures-binary wall-clock runs. Regenerated by `go run ./cmd/perfcheck`.\n\n")
	b.WriteString("| benchmark |")
	for _, f := range files {
		fmt.Fprintf(&b, " %s |", f.label)
	}
	b.WriteString("\n|---|")
	for range files {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "| %s |", k)
		for _, f := range files {
			r, ok := f.rep.Benchmarks[k]
			switch {
			case !ok:
				b.WriteString(" — |")
			case r.AllocsPerOp != nil:
				fmt.Fprintf(&b, " %s (%d) |", fmtNs(r.NsPerOp), *r.AllocsPerOp)
			default:
				fmt.Fprintf(&b, " %s |", fmtNs(r.NsPerOp))
			}
		}
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// fmtNs renders a nanosecond quantity at a human scale.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.1fns", ns)
	}
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	err = json.Unmarshal(data, &rep)
	return rep, err
}

func sortedKeys(m map[string]Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func runPkg(pkg, bench string, count int, into map[string]Result) error {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-count", strconv.Itoa(count), "-benchmem", pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		key := pkg + ":" + m[1]
		r, seen := into[key]
		if !seen || ns < r.NsPerOp {
			r.NsPerOp = ns
		}
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			if a, err := strconv.ParseUint(am[1], 10, 64); err == nil {
				if r.AllocsPerOp == nil || a < *r.AllocsPerOp {
					r.AllocsPerOp = &a
				}
			}
		}
		into[key] = r
	}
	return nil
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
		os.Exit(1)
	}
}
