// Command perfcheck is the host-performance regression harness: it runs a
// pinned set of benchmarks, writes the results as BENCH_<n>.json, and
// compares ns/op against a committed baseline with a tolerance gate, so a
// change that quietly slows the simulator down fails CI instead of landing.
//
// Usage:
//
//	go run ./cmd/perfcheck                  # run, write BENCH_1.json, gate vs baseline
//	go run ./cmd/perfcheck -update          # refresh BENCH_baseline.json (new machine or accepted change)
//	go run ./cmd/perfcheck -count 5 -tol 0.5
//
// The pinned set mixes macro benchmarks (full figure pipelines, dominated by
// the simulator's end-to-end hot path) with bus-level micro benchmarks that
// isolate the snooping machinery and the HDR-histogram record/merge path the
// latency collector leans on. Results are min-of-count: the minimum is
// the least noisy estimator on a shared machine. allocs/op is recorded for
// diagnosis but only ns/op gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// pinnedBench is the default benchmark selection, chosen to cover the
// simulator's perf-critical layers: the figure pipelines (engine + memory
// system + generators), the local-hit fast path, and the snoop-heavy bus
// patterns the duplicate-tag filter exists for, and the loaded-latency hot
// path (curve lookup + utilization-window update) every bus transaction pays
// under -memmodel loaded.
const pinnedBench = "^(BenchmarkFig08C2CRatio|BenchmarkFig13DCacheMissRate|BenchmarkFig16SharedCaches|" +
	"BenchmarkReadLocalHit|BenchmarkMigratoryWrite16Nodes|BenchmarkReadSharedGetS16Nodes|" +
	"BenchmarkHDRRecord|BenchmarkHDRMerge|BenchmarkCurveLookup|BenchmarkLoadTrackerRecord)$"

// Result is one benchmark's summary, min across runs.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp *uint64 `json:"allocs_per_op,omitempty"`
}

// Report is the BENCH_<n>.json document.
type Report struct {
	Note       string            `json:"note,omitempty"`
	Count      int               `json:"count"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\S+) ns/op(.*)$`)
var allocsField = regexp.MustCompile(`(\d+) allocs/op`)

func main() {
	bench := flag.String("bench", pinnedBench, "benchmark regex passed to go test -bench")
	pkgs := flag.String("pkgs", ".,./internal/coherence,./internal/memsys,./internal/obs", "comma-separated packages to benchmark")
	count := flag.Int("count", 3, "runs per benchmark; the minimum is kept")
	tol := flag.Float64("tol", 0.30, "allowed fractional ns/op regression vs baseline")
	out := flag.String("out", "BENCH_1.json", "result file to write")
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file to gate against")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	note := flag.String("note", "", "free-form note recorded in the result file")
	flag.Parse()

	rep := Report{Note: *note, Count: *count, Benchmarks: map[string]Result{}}
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		if err := runPkg(pkg, *bench, *count, rep.Benchmarks); err != nil {
			fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
			os.Exit(1)
		}
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "perfcheck: no benchmarks matched")
		os.Exit(1)
	}

	writeJSON(*out, rep)
	fmt.Printf("wrote %s (%d benchmarks, min of %d runs)\n", *out, len(rep.Benchmarks), *count)

	if *update {
		writeJSON(*baselinePath, rep)
		fmt.Printf("baseline %s updated\n", *baselinePath)
		return
	}

	base, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: no baseline (%v); run with -update to create one\n", err)
		os.Exit(1)
	}
	var baseRep Report
	if err := json.Unmarshal(base, &baseRep); err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: bad baseline: %v\n", err)
		os.Exit(1)
	}

	failed := false
	for _, b := range sortedKeys(baseRep.Benchmarks) {
		cur, ok := rep.Benchmarks[b]
		if !ok {
			fmt.Printf("FAIL %-40s in baseline but not in this run\n", b)
			failed = true
			continue
		}
		bl := baseRep.Benchmarks[b]
		ratio := cur.NsPerOp / bl.NsPerOp
		status := "ok  "
		if ratio > 1+*tol {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-40s %12.1f ns/op  baseline %12.1f  (%+.1f%%)\n",
			status, b, cur.NsPerOp, bl.NsPerOp, (ratio-1)*100)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "perfcheck: ns/op regression beyond %.0f%% tolerance\n", *tol*100)
		os.Exit(1)
	}
}

func sortedKeys(m map[string]Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func runPkg(pkg, bench string, count int, into map[string]Result) error {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-count", strconv.Itoa(count), "-benchmem", pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		key := pkg + ":" + m[1]
		r, seen := into[key]
		if !seen || ns < r.NsPerOp {
			r.NsPerOp = ns
		}
		if am := allocsField.FindStringSubmatch(m[3]); am != nil {
			if a, err := strconv.ParseUint(am[1], 10, 64); err == nil {
				if r.AllocsPerOp == nil || a < *r.AllocsPerOp {
					r.AllocsPerOp = &a
				}
			}
		}
		into[key] = r
	}
	return nil
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "perfcheck: %v\n", err)
		os.Exit(1)
	}
}
