package main

import (
	"os"
	"strings"
	"testing"
)

// TestEmitTriage checks the gate-failure path's triage artifact: given a
// baseline and a current report with one injected regression, PERF_TRIAGE.md
// appears (atomically) with that regression ranked first.
func TestEmitTriage(t *testing.T) {
	t.Chdir(t.TempDir())
	base := `{"benchmarks": {
		"pkg:BenchmarkHot": {"ns_per_op": 100, "allocs_per_op": 10},
		"pkg:BenchmarkCold": {"ns_per_op": 50, "allocs_per_op": 3},
		"e2e:FiguresQuick": {"ns_per_op": 9.5e9}
	}}`
	cur := `{"benchmarks": {
		"pkg:BenchmarkHot": {"ns_per_op": 260, "allocs_per_op": 10},
		"pkg:BenchmarkCold": {"ns_per_op": 50, "allocs_per_op": 3},
		"e2e:FiguresQuick": {"ns_per_op": 9.55e9}
	}}`
	if err := os.WriteFile("BENCH_baseline.json", []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_1.json", []byte(cur), 0o644); err != nil {
		t.Fatal(err)
	}

	emitTriage("BENCH_baseline.json", "BENCH_1.json")

	buf, err := os.ReadFile("PERF_TRIAGE.md")
	if err != nil {
		t.Fatalf("no PERF_TRIAGE.md after a failed gate: %v", err)
	}
	md := string(buf)
	hot := strings.Index(md, "pkg:BenchmarkHot.ns_per_op")
	if hot < 0 {
		t.Fatalf("triage misses the regressed benchmark:\n%s", md)
	}
	if e2e := strings.Index(md, "e2e:FiguresQuick"); e2e >= 0 && e2e < hot {
		t.Fatalf("noise ranked above the 2.6x regression:\n%s", md)
	}
	if strings.Contains(md, "BenchmarkCold") {
		t.Fatalf("unchanged benchmark in the triage table:\n%s", md)
	}
}

// TestEmitTriageBadBaseline checks triage failures are reported, not fatal:
// a missing baseline leaves no artifact but does not panic or exit.
func TestEmitTriageBadBaseline(t *testing.T) {
	t.Chdir(t.TempDir())
	emitTriage("does-not-exist.json", "also-missing.json")
	if _, err := os.Stat("PERF_TRIAGE.md"); !os.IsNotExist(err) {
		t.Fatal("triage artifact written despite unreadable inputs")
	}
}
