// obsdiff compares two run artifacts and prints ranked regression triage.
//
//	go run ./cmd/obsdiff BENCH_base.json BENCH_head.json
//	go run ./cmd/obsdiff -json -o triage.json clean-report.json faulted-report.json
//	go run ./cmd/obsdiff -top 10 base.folded head.folded
//
// The artifact format (perfcheck BENCH report, simulator JSON report,
// metrics snapshot, folded profile) is auto-detected; both files must be
// the same format. Output is a ranked Markdown table by default, JSON with
// -json; -o writes atomically instead of printing.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obsdiff"
)

func main() {
	asJSON := flag.Bool("json", false, "emit the triage report as JSON instead of Markdown")
	out := flag.String("o", "", "write the report to this file (atomic rename) instead of stdout")
	minRel := flag.Float64("min-rel", 0.02, "noise floor: drop deltas with relative change below this")
	minAbs := flag.Float64("min-abs", 0, "drop deltas whose larger side is below this absolute value")
	top := flag.Int("top", 0, "keep only the top-N ranked deltas (0 = all)")
	fail := flag.Bool("fail", false, "exit 1 when any significant delta survives the filters")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: obsdiff [flags] <artifact-a> <artifact-b>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	rep, err := obsdiff.DiffFiles(flag.Arg(0), flag.Arg(1), obsdiff.Options{
		MinRel: *minRel, MinAbs: *minAbs, Top: *top,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "obsdiff: %v\n", err)
		os.Exit(1)
	}

	buf := rep.Markdown()
	if *asJSON {
		buf = rep.JSON()
	}
	if *out != "" {
		if err := obs.AtomicWriteFile(*out, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "obsdiff: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "obsdiff: wrote %s (%d deltas)\n", *out, len(rep.Deltas))
	} else {
		os.Stdout.Write(buf)
	}
	if *fail && len(rep.Deltas) > 0 {
		os.Exit(1)
	}
}
