// Command ablations runs the design-choice studies the paper motivates in
// prose: Solaris ISM pages (§6), collector parallelism (§4.1),
// cache-to-cache latency sensitivity (§4.3), and the invalidation protocol
// (§4.5). See internal/core/ablations.go.
//
// Usage:
//
//	ablations [-quick] [-which ism|gc|latency|protocol|volano|cosim]
package main

import (
	"flag"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "reduced runs")
	which := flag.String("which", "", "run one study (ism, gc, latency, protocol)")
	flag.Parse()

	o := core.DefaultAblationOpts()
	if *quick {
		o = core.QuickAblationOpts()
	}
	want := func(n string) bool { return *which == "" || *which == n }
	if want("ism") {
		report.Render(os.Stdout, core.AblationISM(o))
	}
	if want("gc") {
		report.Render(os.Stdout, core.AblationGCThreads(o))
	}
	if want("latency") {
		report.Render(os.Stdout, core.AblationC2CLatency(o))
	}
	if want("protocol") {
		report.Render(os.Stdout, core.AblationProtocol(o))
	}
	if want("volano") {
		report.Render(os.Stdout, core.RelatedWorkKernelTime(o))
	}
	if want("cosim") {
		report.Render(os.Stdout, core.CoSimExperiment(o))
	}
}
