// Command ablations runs the design-choice studies the paper motivates in
// prose: Solaris ISM pages (§6), collector parallelism (§4.1),
// cache-to-cache latency sensitivity (§4.3), and the invalidation protocol
// (§4.5). See internal/core/ablations.go.
//
// Usage:
//
//	ablations [-quick] [-which ism|gc|latency|protocol|volano|cosim]
//	          [-memmodel fixed|loaded]
//	          [-trace FILE] [-metrics FILE] [-profile FILE] [-heartbeat DUR]
//	          [-attr FILE] [-attr-exact] [-attr-top N] [-inspect ADDR]
//	          [-latency FILE] [-slo SPEC] [-latency-interval cycles]
//
// The observability flags additionally run one fully-observed point per
// workload (the study's processor count and seed) after the studies, the
// same semantics as cmd/figures: artifacts land next to the study output
// with a reproducibility manifest beside each file.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/report"
)

// appFlags is the full flag surface; registerFlags keeps it testable (the
// flag-parity test registers onto a scratch FlagSet).
type appFlags struct {
	quick    *bool
	which    *string
	memmodel *string
	ofl      obs.Flags
	hp       obs.HostProfile
}

func registerFlags(fs *flag.FlagSet) *appFlags {
	af := &appFlags{
		quick:    fs.Bool("quick", false, "reduced runs"),
		which:    fs.String("which", "", "run one study (ism, gc, latency, protocol, volano, cosim)"),
		memmodel: fs.String("memmodel", "fixed", "memory timing model: fixed (unloaded scalar latencies) or loaded (bandwidth-latency curve)"),
	}
	af.ofl.Register(fs)
	af.hp.Register(fs)
	return af
}

func main() {
	af := registerFlags(flag.CommandLine)
	flag.Parse()
	quick, which, ofl, hp := af.quick, af.which, &af.ofl, &af.hp
	memModel, err := memsys.ParseMemModel(*af.memmodel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablations:", err)
		os.Exit(2)
	}

	if err := hp.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer hp.Stop()

	o := core.DefaultAblationOpts()
	if *quick {
		o = core.QuickAblationOpts()
	}
	o.MemModel = memModel

	start := time.Now()
	hb := obs.StartHeartbeat(os.Stderr, "ablations", ofl.Heartbeat)
	defer hb.Stop()

	want := func(n string) bool { return *which == "" || *which == n }
	if want("ism") {
		report.Render(os.Stdout, core.AblationISM(o))
	}
	if want("gc") {
		report.Render(os.Stdout, core.AblationGCThreads(o))
	}
	if want("latency") {
		report.Render(os.Stdout, core.AblationC2CLatency(o))
	}
	if want("protocol") {
		report.Render(os.Stdout, core.AblationProtocol(o))
	}
	if want("volano") {
		report.Render(os.Stdout, core.RelatedWorkKernelTime(o))
	}
	if want("cosim") {
		report.Render(os.Stdout, core.CoSimExperiment(o))
	}

	if ofl.Enabled() {
		// One fully-observed point per workload at the studies' shape, the
		// same semantics as cmd/figures' observed runs.
		runOpts := core.Opts{
			WarmupCycles:  o.WarmupCycles,
			MeasureCycles: o.MeasureCycles,
			MemModel:      o.MemModel,
		}
		var insp *obs.Inspector
		if ofl.Inspect != "" {
			var err error
			insp, err = obs.StartInspector(ofl.Inspect, "ablations", hb)
			if err != nil {
				fmt.Fprintf(os.Stderr, "starting inspector: %v\n", err)
				os.Exit(1)
			}
			defer insp.Close()
			fmt.Fprintf(os.Stderr, "inspector listening on http://%s\n", insp.Addr())
		}
		var observers []*obs.Observer
		var snaps []*obs.Snapshot
		var labels []string
		for i, kind := range []core.Kind{core.SPECjbb, core.ECperf} {
			fmt.Fprintf(os.Stderr, "observed run: %s, %d processors, seed %d...\n", kind, o.Processors, o.Seed)
			ob := ofl.NewObserver(i)
			ob.Inspect = insp
			insp.SetNote(fmt.Sprintf("observed run: %s, %d processors", kind, o.Processors))
			ob, rec := flightrec.FromFlags(ofl, "ablations-"+kind.String(), ob)
			rec.SetInspector(insp)
			rt, err := core.NewLatencyCollector(ofl)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ablations:", err)
				os.Exit(1)
			}
			_, snap := core.RunObservedPointFlight(kind, o.Processors, o.Seed, runOpts, ob, rt, rec)
			if s := rec.Summary(); s != "" {
				fmt.Fprintln(os.Stderr, s)
			}
			observers = append(observers, ob)
			snaps = append(snaps, snap)
			labels = append(labels, kind.String())
		}
		m := &obs.Manifest{
			Command: "ablations",
			Args:    os.Args[1:],
			Git:     obs.GitDescribe(),
			Started: start,
			Seeds:   []uint64{o.Seed},
			Opts: map[string]any{
				"ablation": o,
				"observed": map[string]any{"processors": o.Processors, "seed": o.Seed},
			},
			WallSeconds: time.Since(start).Seconds(),
		}
		if err := ofl.WriteArtifacts(labels, observers, snaps, m); err != nil {
			fmt.Fprintf(os.Stderr, "writing observability artifacts: %v\n", err)
			os.Exit(1)
		}
	}
}
