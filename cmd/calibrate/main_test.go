package main

import (
	"flag"
	"testing"

	"repro/internal/obs"
)

// TestFlagParity fails when this driver drifts from the shared flag surface:
// every standard observability flag, the host-profile pair, the memory-model
// switch, and the driver's own flags must all be registered.
func TestFlagParity(t *testing.T) {
	fs := flag.NewFlagSet("calibrate", flag.ContinueOnError)
	registerFlags(fs)
	want := append(obs.StandardFlagNames(), obs.HostProfileFlagNames()...)
	want = append(want, "memmodel", "measure", "seed")
	for _, name := range want {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}
