// Command calibrate prints one diagnostic line per (workload, processor
// count) point of the scaling sweep, with bus-level miss decomposition by
// address region, lock-wait breakdown by lock class, and remote-tier
// utilization. It is the tool the simulator's parameters were tuned with;
// keep it around — every recalibration starts here.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
)

func main() {
	measure := flag.Uint64("measure", 30_000_000, "measurement window in cycles")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	o := core.QuickOpts()
	o.MeasureCycles = *measure
	for _, kind := range []core.Kind{core.SPECjbb, core.ECperf} {
		for _, p := range []int{1, 2, 4, 8, 12, 15} {
			t0 := time.Now()
			pt := core.RunScalingPointDebug(kind, p, *seed, o)
			fmt.Printf("%-8s P=%-2d thr=%8.0f cpi=%.2f(o=%.2f i=%.2f d=%.2f) u=%.2f s=%.2f io=%.2f id=%.2f gci=%.2f c2c=%.2f gc=%d gcf=%.3f i/op=%.0f\n  %s [%s]\n",
				kind, p, pt.Throughput, pt.CPI, pt.OtherCPI, pt.IStallCPI, pt.DStallCPI,
				pt.UserFrac, pt.SystemFrac, pt.IOFrac, pt.IdleFrac, pt.GCIdleFrac,
				pt.C2CRatio, pt.GCCount, pt.GCWallFrac, pt.InstrPerOp, pt.Debug,
				time.Since(t0).Round(time.Millisecond))
		}
	}
}
