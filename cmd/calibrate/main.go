// Command calibrate prints one diagnostic line per (workload, processor
// count) point of the scaling sweep, with bus-level miss decomposition by
// address region, lock-wait breakdown by lock class, and remote-tier
// utilization. It is the tool the simulator's parameters were tuned with;
// keep it around — every recalibration starts here.
//
// Usage:
//
//	calibrate [-measure cycles] [-seed N] [-memmodel fixed|loaded]
//	          [-trace FILE] [-metrics FILE] [-profile FILE] [-heartbeat DUR]
//	          [-attr FILE] [-attr-exact] [-attr-top N] [-inspect ADDR]
//	          [-latency FILE] [-slo SPEC] [-latency-interval cycles]
//
// The observability flags additionally run one fully-observed point per
// workload (the largest processor count in the sweep) after the diagnostic
// table, the same semantics as cmd/figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
)

// appFlags is the full flag surface; registerFlags keeps it testable (the
// flag-parity test registers onto a scratch FlagSet).
type appFlags struct {
	measure  *uint64
	seed     *uint64
	memmodel *string
	ofl      obs.Flags
	hp       obs.HostProfile
}

func registerFlags(fs *flag.FlagSet) *appFlags {
	af := &appFlags{
		measure:  fs.Uint64("measure", 30_000_000, "measurement window in cycles"),
		seed:     fs.Uint64("seed", 1, "simulation seed"),
		memmodel: fs.String("memmodel", "fixed", "memory timing model: fixed (unloaded scalar latencies) or loaded (bandwidth-latency curve)"),
	}
	af.ofl.Register(fs)
	af.hp.Register(fs)
	return af
}

func main() {
	af := registerFlags(flag.CommandLine)
	flag.Parse()
	measure, seed, ofl, hp := af.measure, af.seed, &af.ofl, &af.hp
	memModel, err := memsys.ParseMemModel(*af.memmodel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(2)
	}

	if err := hp.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer hp.Stop()

	o := core.QuickOpts()
	o.MeasureCycles = *measure
	o.MemModel = memModel

	start := time.Now()
	hb := obs.StartHeartbeat(os.Stderr, "calibrate", ofl.Heartbeat)
	defer hb.Stop()
	o.Progress = hb

	procs := []int{1, 2, 4, 8, 12, 15}
	for _, kind := range []core.Kind{core.SPECjbb, core.ECperf} {
		for _, p := range procs {
			t0 := time.Now()
			pt := core.RunScalingPointDebug(kind, p, *seed, o)
			fmt.Printf("%-8s P=%-2d thr=%8.0f cpi=%.2f(o=%.2f i=%.2f d=%.2f) u=%.2f s=%.2f io=%.2f id=%.2f gci=%.2f c2c=%.2f gc=%d gcf=%.3f i/op=%.0f\n  %s [%s]\n",
				kind, p, pt.Throughput, pt.CPI, pt.OtherCPI, pt.IStallCPI, pt.DStallCPI,
				pt.UserFrac, pt.SystemFrac, pt.IOFrac, pt.IdleFrac, pt.GCIdleFrac,
				pt.C2CRatio, pt.GCCount, pt.GCWallFrac, pt.InstrPerOp, pt.Debug,
				time.Since(t0).Round(time.Millisecond))
		}
	}

	if ofl.Enabled() {
		// One fully-observed point per workload at the largest sweep shape,
		// the same semantics as cmd/figures' observed runs.
		obsProcs := procs[len(procs)-1]
		var insp *obs.Inspector
		if ofl.Inspect != "" {
			var err error
			insp, err = obs.StartInspector(ofl.Inspect, "calibrate", hb)
			if err != nil {
				fmt.Fprintf(os.Stderr, "starting inspector: %v\n", err)
				os.Exit(1)
			}
			defer insp.Close()
			fmt.Fprintf(os.Stderr, "inspector listening on http://%s\n", insp.Addr())
		}
		var observers []*obs.Observer
		var snaps []*obs.Snapshot
		var labels []string
		for i, kind := range []core.Kind{core.SPECjbb, core.ECperf} {
			fmt.Fprintf(os.Stderr, "observed run: %s, %d processors, seed %d...\n", kind, obsProcs, *seed)
			ob := ofl.NewObserver(i)
			ob.Inspect = insp
			insp.SetNote(fmt.Sprintf("observed run: %s, %d processors", kind, obsProcs))
			ob, rec := flightrec.FromFlags(ofl, "calibrate-"+kind.String(), ob)
			rec.SetInspector(insp)
			rt, err := core.NewLatencyCollector(ofl)
			if err != nil {
				fmt.Fprintln(os.Stderr, "calibrate:", err)
				os.Exit(1)
			}
			_, snap := core.RunObservedPointFlight(kind, obsProcs, *seed, o, ob, rt, rec)
			if s := rec.Summary(); s != "" {
				fmt.Fprintln(os.Stderr, s)
			}
			observers = append(observers, ob)
			snaps = append(snaps, snap)
			labels = append(labels, kind.String())
		}
		manifestOpts := o
		manifestOpts.Progress = nil
		m := &obs.Manifest{
			Command: "calibrate",
			Args:    os.Args[1:],
			Git:     obs.GitDescribe(),
			Started: start,
			Seeds:   []uint64{*seed},
			Opts: map[string]any{
				"sweep":    manifestOpts,
				"observed": map[string]any{"processors": obsProcs, "seed": *seed},
			},
			WallSeconds: time.Since(start).Seconds(),
		}
		if err := ofl.WriteArtifacts(labels, observers, snaps, m); err != nil {
			fmt.Fprintf(os.Stderr, "writing observability artifacts: %v\n", err)
			os.Exit(1)
		}
	}
}
