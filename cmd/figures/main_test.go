package main

import (
	"bytes"
	"flag"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestFlagParity fails when this driver drifts from the shared flag surface:
// every standard observability flag, the host-profile pair, the memory-model
// switch, and the driver's own flags must all be registered.
func TestFlagParity(t *testing.T) {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	registerFlags(fs)
	want := append(obs.StandardFlagNames(), obs.HostProfileFlagNames()...)
	want = append(want, "memmodel", "fig", "quick", "seeds", "md", "serial")
	for _, name := range want {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

// runFigures drives the whole program in-process and returns its stdout,
// stderr, and exit code.
func runFigures(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return out.String(), errw.String(), code
}

// TestParallelMatchesSerial is the scheduler's contract: stdout from the
// global-work-queue mode must be byte-identical to -serial (the old
// one-sweep-at-a-time order) — for the full set and for every individual
// figure. Figures render after the queue drains, in serial figure order,
// so completion order must never leak into the output.
func TestParallelMatchesSerial(t *testing.T) {
	figs := []string{"0"}
	if !testing.Short() {
		figs = append(figs, "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16")
	}
	for _, fig := range figs {
		fig := fig
		t.Run("fig"+fig, func(t *testing.T) {
			par, _, code := runFigures(t, "-quick", "-fig", fig)
			if code != 0 {
				t.Fatalf("parallel run exited %d", code)
			}
			ser, _, code := runFigures(t, "-quick", "-fig", fig, "-serial")
			if code != 0 {
				t.Fatalf("serial run exited %d", code)
			}
			if par != ser {
				t.Fatalf("-fig %s: parallel stdout differs from -serial (%d vs %d bytes)", fig, len(par), len(ser))
			}
		})
	}
}

// TestSingleFigureRunsOnlyItsSweeps asserts that a single-figure request
// never executes unrelated simulation groups: each group announces itself
// on stderr immediately before submitting its cells, so the banner set is
// the scheduled-work set.
func TestSingleFigureRunsOnlyItsSweeps(t *testing.T) {
	banners := []string{
		"running scaling sweeps",
		"running communication profiles",
		"running memory-scaling study",
		"running uniprocessor cache sweeps",
		"running shared-cache CMP study",
	}
	cases := []struct {
		fig  string
		want string
	}{
		{"13", "running uniprocessor cache sweeps"},
		{"11", "running memory-scaling study"},
	}
	for _, c := range cases {
		c := c
		t.Run("fig"+c.fig, func(t *testing.T) {
			_, stderr, code := runFigures(t, "-quick", "-fig", c.fig)
			if code != 0 {
				t.Fatalf("run exited %d: %s", code, stderr)
			}
			for _, b := range banners {
				has := strings.Contains(stderr, b)
				if b == c.want && !has {
					t.Errorf("-fig %s: expected %q group to run, stderr:\n%s", c.fig, b, stderr)
				}
				if b != c.want && has {
					t.Errorf("-fig %s: unrelated group %q was scheduled, stderr:\n%s", c.fig, b, stderr)
				}
			}
		})
	}
}
