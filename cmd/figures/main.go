// Command figures regenerates the paper's evaluation figures (Figures 4
// through 16 of "Memory System Behavior of Java-Based Middleware",
// HPCA 2003) from the simulator and renders each as a data table and an
// ASCII plot.
//
// Usage:
//
//	figures [-fig N] [-quick] [-seeds K] [-serial] [-memmodel fixed|loaded]
//	        [-trace FILE] [-metrics FILE] [-profile FILE] [-heartbeat DUR]
//	        [-attr FILE] [-attr-exact] [-attr-top N] [-inspect ADDR]
//
// Without -fig, every figure is produced (Figures 4–9 share one scaling
// sweep per workload, so the whole set costs little more than its largest
// member). -quick selects the reduced test-sized configuration.
//
// All requested figures' simulation cells are admitted to one global work
// queue up front, so host cores stay busy across figure boundaries;
// figures are rendered in serial order once the queue drains, making
// stdout byte-identical to -serial, which runs every cell inline in
// submission order (the old one-sweep-at-a-time behavior).
//
// The observability flags additionally run one fully-observed point per
// workload (the largest processor count, first seed) and write a Chrome
// trace, a metrics-registry snapshot, a folded-stack cycle profile, a
// memory-attribution report, and/or a request-latency/SLO report
// (-latency/-slo), each with a reproducibility manifest
// (<file>.manifest.json) beside it. -inspect serves the observed runs'
// live metrics and attribution tables over HTTP while they execute.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/obs/flightrec"
	"repro/internal/report"
	"repro/internal/stats"
)

// appFlags is the full flag surface; registerFlags keeps it testable (the
// flag-parity test registers onto a scratch FlagSet).
type appFlags struct {
	fig      *int
	quick    *bool
	seeds    *int
	md       *bool
	serial   *bool
	memmodel *string
	ofl      obs.Flags
	hp       obs.HostProfile
}

func registerFlags(fs *flag.FlagSet) *appFlags {
	af := &appFlags{
		fig:      fs.Int("fig", 0, "figure number to regenerate (0 = all)"),
		quick:    fs.Bool("quick", false, "reduced runs (single seed, short windows)"),
		seeds:    fs.Int("seeds", 0, "override the number of seeds"),
		md:       fs.Bool("md", false, "emit GitHub-flavored markdown tables instead of text+plots"),
		serial:   fs.Bool("serial", false, "run simulation cells serially in submission order instead of on the global work queue"),
		memmodel: fs.String("memmodel", "fixed", "memory timing model: fixed (unloaded scalar latencies) or loaded (bandwidth-latency curve)"),
	}
	af.ofl.Register(fs)
	af.hp.Register(fs)
	return af
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program behind a testable seam: parse args, schedule
// the requested figures' cells, render in order, optionally run the
// observed points. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	af := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fig, quick, seeds, md := af.fig, af.quick, af.seeds, af.md
	ofl, hp := &af.ofl, &af.hp
	memModel, err := memsys.ParseMemModel(*af.memmodel)
	if err != nil {
		fmt.Fprintln(stderr, "figures:", err)
		return 2
	}

	if err := hp.Start(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer hp.Stop()

	opts := core.DefaultOpts()
	sweepOpts := core.DefaultSweepOpts()
	memOpts := core.DefaultMemScaleOpts()
	commOpts := core.DefaultCommOpts()
	sharedOpts := core.DefaultSharedCacheOpts()
	if *quick {
		opts = core.QuickOpts()
		sweepOpts = core.QuickSweepOpts()
		memOpts = core.QuickMemScaleOpts()
		commOpts = core.QuickCommOpts()
		sharedOpts = core.QuickSharedCacheOpts()
	}
	if *seeds > 0 {
		opts.Seeds = stats.Seeds(20030208, *seeds)
		sharedOpts.Seeds = opts.Seeds
	}
	// The memory model only affects the timing simulations (the scaling
	// sweeps and observed points); the uniprocessor cache sweeps (Figures
	// 12/13) count misses, not cycles.
	opts.MemModel = memModel

	hb := obs.StartHeartbeat(stderr, "figures", ofl.Heartbeat)
	defer hb.Stop()
	opts.Progress = hb
	sweepOpts.Progress = hb

	want := func(n int) bool { return *fig == 0 || *fig == n }
	emitted := 0
	emit := func(f core.Figure) {
		if *md {
			report.Markdown(stdout, f)
		} else {
			report.Render(stdout, f)
		}
		emitted++
	}

	start := time.Now()

	// Admission: every requested figure submits its cells to one global
	// queue. Only requested groups submit anything — a single-figure run
	// never executes unrelated sweeps.
	workers := core.DefaultWorkers()
	if *af.serial {
		workers = 1
	}
	sched := core.NewScheduler(workers)

	var jbb, ec *core.ScalingSweep
	if want(4) || want(5) || want(6) || want(7) || want(8) || want(9) {
		fmt.Fprintf(stderr, "running scaling sweeps (procs=%v, %d seeds)...\n", opts.Procs, len(opts.Seeds))
		jbb = core.ScheduleScalingSweep(sched, core.SPECjbb, opts)
		ec = core.ScheduleScalingSweep(sched, core.ECperf, opts)
	}

	var commJbb, commEc *core.CommProfile
	if want(10) || want(14) || want(15) {
		fmt.Fprintln(stderr, "running communication profiles (8 processors)...")
		commJbb, commEc = core.ScheduleCommProfiles(sched, commOpts)
	}

	var memRuns *core.MemScaleRuns
	if want(11) {
		fmt.Fprintln(stderr, "running memory-scaling study...")
		memRuns = core.ScheduleMemScale(sched, memOpts)
	}

	var cs *core.CacheSweeps
	if want(12) || want(13) {
		fmt.Fprintln(stderr, "running uniprocessor cache sweeps...")
		cs = core.ScheduleCacheSweeps(sched, sweepOpts)
	}

	var shared *core.SharedCacheRuns
	if want(16) {
		fmt.Fprintln(stderr, "running shared-cache CMP study...")
		shared = core.ScheduleSharedCache(sched, sharedOpts)
	}

	sched.Wait()

	// Rendering: serial figure order, independent of cell completion
	// order, so stdout is byte-identical to a -serial run.
	if jbb != nil {
		if want(4) {
			emit(core.Fig4Throughput(jbb, ec))
		}
		if want(5) {
			emit(core.Fig5ExecutionModes(ec))
			emit(core.Fig5ExecutionModes(jbb))
		}
		if want(6) {
			emit(core.Fig6CPIBreakdown(ec))
			emit(core.Fig6CPIBreakdown(jbb))
		}
		if want(7) {
			emit(core.Fig7DataStall(ec))
			emit(core.Fig7DataStall(jbb))
		}
		if want(8) {
			emit(core.Fig8C2CRatio(jbb, ec))
		}
		if want(9) {
			emit(core.Fig9GCScaling(jbb, ec))
		}
	}
	if commJbb != nil {
		if want(10) {
			emit(core.Fig10C2CTimeline(*commJbb))
		}
		if want(14) {
			emit(core.Fig14C2CDistribution(*commJbb, *commEc))
		}
		if want(15) {
			emit(core.Fig15C2CFootprint(*commJbb, *commEc))
		}
	}
	if memRuns != nil {
		emit(memRuns.Figure())
	}
	if cs != nil {
		if want(12) {
			emit(core.Fig12ICacheMissRate(cs))
		}
		if want(13) {
			emit(core.Fig13DCacheMissRate(cs))
		}
	}
	if shared != nil {
		emit(shared.Figure())
	}

	if emitted == 0 {
		fmt.Fprintf(stderr, "no such figure: %d (the paper has Figures 4-16)\n", *fig)
		return 2
	}

	if ofl.Enabled() {
		// One fully-observed point per workload: the largest sweep point,
		// first seed. Workloads are kept apart by pid on the trace timeline
		// and by scope in the folded profile.
		procs := opts.Procs[len(opts.Procs)-1]
		seed := opts.Seeds[0]
		var insp *obs.Inspector
		if ofl.Inspect != "" {
			var err error
			insp, err = obs.StartInspector(ofl.Inspect, "figures", hb)
			if err != nil {
				fmt.Fprintf(stderr, "starting inspector: %v\n", err)
				return 1
			}
			defer insp.Close()
			fmt.Fprintf(stderr, "inspector listening on http://%s\n", insp.Addr())
		}
		var observers []*obs.Observer
		var snaps []*obs.Snapshot
		var labels []string
		for i, kind := range []core.Kind{core.SPECjbb, core.ECperf} {
			fmt.Fprintf(stderr, "observed run: %s, %d processors, seed %d...\n", kind, procs, seed)
			ob := ofl.NewObserver(i)
			ob.Inspect = insp
			insp.SetNote(fmt.Sprintf("observed run: %s, %d processors", kind, procs))
			// The flight recorder rides each observed point (one recorder per
			// workload, so dumps never mix timelines); the unobserved sweep
			// cells stay recorder-free, keeping the figure pipeline identical
			// to what the perf gate times.
			ob, rec := flightrec.FromFlags(ofl, "figures-"+kind.String(), ob)
			rec.SetInspector(insp)
			// Each observed run gets its own latency collector; the -latency
			// artifact keys the reports by workload label.
			rt, err := core.NewLatencyCollector(ofl)
			if err != nil {
				fmt.Fprintln(stderr, "figures:", err)
				return 1
			}
			_, snap := core.RunObservedPointFlight(kind, procs, seed, opts, ob, rt, rec)
			if s := rec.Summary(); s != "" {
				fmt.Fprintln(stderr, s)
			}
			observers = append(observers, ob)
			snaps = append(snaps, snap)
			labels = append(labels, kind.String())
		}
		manifestOpts := opts
		manifestOpts.Progress = nil
		m := &obs.Manifest{
			Command: "figures",
			Args:    args,
			Git:     obs.GitDescribe(),
			Started: start,
			Seeds:   opts.Seeds,
			Opts: map[string]any{
				"scaling":  manifestOpts,
				"observed": map[string]any{"processors": procs, "seed": seed},
			},
			WallSeconds: time.Since(start).Seconds(),
		}
		if err := ofl.WriteArtifacts(labels, observers, snaps, m); err != nil {
			fmt.Fprintf(stderr, "writing observability artifacts: %v\n", err)
			return 1
		}
	}

	fmt.Fprintf(stderr, "done: %d figure renderings in %s\n", emitted, time.Since(start).Round(time.Second))
	return 0
}
