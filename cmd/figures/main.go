// Command figures regenerates the paper's evaluation figures (Figures 4
// through 16 of "Memory System Behavior of Java-Based Middleware",
// HPCA 2003) from the simulator and renders each as a data table and an
// ASCII plot.
//
// Usage:
//
//	figures [-fig N] [-quick] [-seeds K] [-memmodel fixed|loaded]
//	        [-trace FILE] [-metrics FILE] [-profile FILE] [-heartbeat DUR]
//	        [-attr FILE] [-attr-exact] [-attr-top N] [-inspect ADDR]
//
// Without -fig, every figure is produced (Figures 4–9 share one scaling
// sweep per workload, so the whole set costs little more than its largest
// member). -quick selects the reduced test-sized configuration.
//
// The observability flags additionally run one fully-observed point per
// workload (the largest processor count, first seed) and write a Chrome
// trace, a metrics-registry snapshot, a folded-stack cycle profile, a
// memory-attribution report, and/or a request-latency/SLO report
// (-latency/-slo), each with a reproducibility manifest
// (<file>.manifest.json) beside it. -inspect serves the observed runs'
// live metrics and attribution tables over HTTP while they execute.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/stats"
)

// appFlags is the full flag surface; registerFlags keeps it testable (the
// flag-parity test registers onto a scratch FlagSet).
type appFlags struct {
	fig      *int
	quick    *bool
	seeds    *int
	md       *bool
	memmodel *string
	ofl      obs.Flags
	hp       obs.HostProfile
}

func registerFlags(fs *flag.FlagSet) *appFlags {
	af := &appFlags{
		fig:      fs.Int("fig", 0, "figure number to regenerate (0 = all)"),
		quick:    fs.Bool("quick", false, "reduced runs (single seed, short windows)"),
		seeds:    fs.Int("seeds", 0, "override the number of seeds"),
		md:       fs.Bool("md", false, "emit GitHub-flavored markdown tables instead of text+plots"),
		memmodel: fs.String("memmodel", "fixed", "memory timing model: fixed (unloaded scalar latencies) or loaded (bandwidth-latency curve)"),
	}
	af.ofl.Register(fs)
	af.hp.Register(fs)
	return af
}

func main() {
	af := registerFlags(flag.CommandLine)
	flag.Parse()
	fig, quick, seeds, md := af.fig, af.quick, af.seeds, af.md
	ofl, hp := &af.ofl, &af.hp
	memModel, err := memsys.ParseMemModel(*af.memmodel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}

	if err := hp.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer hp.Stop()

	opts := core.DefaultOpts()
	sweepOpts := core.DefaultSweepOpts()
	memOpts := core.DefaultMemScaleOpts()
	commOpts := core.DefaultCommOpts()
	sharedOpts := core.DefaultSharedCacheOpts()
	if *quick {
		opts = core.QuickOpts()
		sweepOpts = core.QuickSweepOpts()
		memOpts = core.QuickMemScaleOpts()
		commOpts = core.QuickCommOpts()
		sharedOpts = core.QuickSharedCacheOpts()
	}
	if *seeds > 0 {
		opts.Seeds = stats.Seeds(20030208, *seeds)
		sharedOpts.Seeds = opts.Seeds
	}
	// The memory model only affects the timing simulations (the scaling
	// sweeps and observed points); the uniprocessor cache sweeps (Figures
	// 12/13) count misses, not cycles.
	opts.MemModel = memModel

	hb := obs.StartHeartbeat(os.Stderr, "figures", ofl.Heartbeat)
	defer hb.Stop()
	opts.Progress = hb
	sweepOpts.Progress = hb

	want := func(n int) bool { return *fig == 0 || *fig == n }
	emitted := 0
	emit := func(f core.Figure) {
		if *md {
			report.Markdown(os.Stdout, f)
		} else {
			report.Render(os.Stdout, f)
		}
		emitted++
	}

	start := time.Now()

	// Figures 4–9 share the two scaling sweeps.
	if want(4) || want(5) || want(6) || want(7) || want(8) || want(9) {
		fmt.Fprintf(os.Stderr, "running scaling sweeps (procs=%v, %d seeds)...\n", opts.Procs, len(opts.Seeds))
		jbb := core.RunScalingSweep(core.SPECjbb, opts)
		ec := core.RunScalingSweep(core.ECperf, opts)
		if want(4) {
			emit(core.Fig4Throughput(jbb, ec))
		}
		if want(5) {
			emit(core.Fig5ExecutionModes(ec))
			emit(core.Fig5ExecutionModes(jbb))
		}
		if want(6) {
			emit(core.Fig6CPIBreakdown(ec))
			emit(core.Fig6CPIBreakdown(jbb))
		}
		if want(7) {
			emit(core.Fig7DataStall(ec))
			emit(core.Fig7DataStall(jbb))
		}
		if want(8) {
			emit(core.Fig8C2CRatio(jbb, ec))
		}
		if want(9) {
			emit(core.Fig9GCScaling(jbb, ec))
		}
	}

	if want(10) || want(14) || want(15) {
		fmt.Fprintln(os.Stderr, "running communication profiles (8 processors)...")
		jbb := core.RunCommProfile(core.SPECjbb, commOpts)
		ec := core.RunCommProfile(core.ECperf, commOpts)
		if want(10) {
			emit(core.Fig10C2CTimeline(jbb))
		}
		if want(14) {
			emit(core.Fig14C2CDistribution(jbb, ec))
		}
		if want(15) {
			emit(core.Fig15C2CFootprint(jbb, ec))
		}
	}

	if want(11) {
		fmt.Fprintln(os.Stderr, "running memory-scaling study...")
		emit(core.Fig11MemoryScaling(memOpts))
	}

	if want(12) || want(13) {
		fmt.Fprintln(os.Stderr, "running uniprocessor cache sweeps...")
		cs := core.RunCacheSweeps(sweepOpts)
		if want(12) {
			emit(core.Fig12ICacheMissRate(cs))
		}
		if want(13) {
			emit(core.Fig13DCacheMissRate(cs))
		}
	}

	if want(16) {
		fmt.Fprintln(os.Stderr, "running shared-cache CMP study...")
		emit(core.Fig16SharedCaches(sharedOpts))
	}

	if emitted == 0 {
		fmt.Fprintf(os.Stderr, "no such figure: %d (the paper has Figures 4-16)\n", *fig)
		os.Exit(2)
	}

	if ofl.Enabled() {
		// One fully-observed point per workload: the largest sweep point,
		// first seed. Workloads are kept apart by pid on the trace timeline
		// and by scope in the folded profile.
		procs := opts.Procs[len(opts.Procs)-1]
		seed := opts.Seeds[0]
		var insp *obs.Inspector
		if ofl.Inspect != "" {
			var err error
			insp, err = obs.StartInspector(ofl.Inspect, "figures", hb)
			if err != nil {
				fmt.Fprintf(os.Stderr, "starting inspector: %v\n", err)
				os.Exit(1)
			}
			defer insp.Close()
			fmt.Fprintf(os.Stderr, "inspector listening on http://%s\n", insp.Addr())
		}
		var observers []*obs.Observer
		var snaps []*obs.Snapshot
		var labels []string
		for i, kind := range []core.Kind{core.SPECjbb, core.ECperf} {
			fmt.Fprintf(os.Stderr, "observed run: %s, %d processors, seed %d...\n", kind, procs, seed)
			ob := ofl.NewObserver(i)
			ob.Inspect = insp
			insp.SetNote(fmt.Sprintf("observed run: %s, %d processors", kind, procs))
			// Each observed run gets its own latency collector; the -latency
			// artifact keys the reports by workload label.
			rt, err := core.NewLatencyCollector(ofl)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			_, snap := core.RunObservedPointLatency(kind, procs, seed, opts, ob, rt)
			observers = append(observers, ob)
			snaps = append(snaps, snap)
			labels = append(labels, kind.String())
		}
		manifestOpts := opts
		manifestOpts.Progress = nil
		m := &obs.Manifest{
			Command: "figures",
			Args:    os.Args[1:],
			Git:     obs.GitDescribe(),
			Started: start,
			Seeds:   opts.Seeds,
			Opts: map[string]any{
				"scaling":  manifestOpts,
				"observed": map[string]any{"processors": procs, "seed": seed},
			},
			WallSeconds: time.Since(start).Seconds(),
		}
		if err := ofl.WriteArtifacts(labels, observers, snaps, m); err != nil {
			fmt.Fprintf(os.Stderr, "writing observability artifacts: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Fprintf(os.Stderr, "done: %d figure renderings in %s\n", emitted, time.Since(start).Round(time.Second))
}
