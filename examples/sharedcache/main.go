// Shared-cache CMP study: the paper's closing experiment (Figure 16).
// Eight processors share 1 MB L2 caches in groups of 1, 2, 4, and 8 —
// total cache shrinking from 8 MB to 1 MB as sharing widens.
//
// The two workloads pull opposite ways: ECperf's small, heavily shared
// working set loses its coherence misses and wins; SPECjbb-25's in-heap
// emulated database no longer fits and loses. This is the paper's example
// of two "similar" benchmarks steering a design decision in opposite
// directions.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	opts := core.SharedCacheOpts{
		Grouping:      []int{1, 2, 4, 8},
		Seeds:         stats.Seeds(11, 2),
		WarmupCycles:  8_000_000,
		MeasureCycles: 20_000_000,
	}
	fmt.Fprintln(os.Stderr, "running 8 configurations (2 workloads x 4 groupings x 2 seeds)...")
	f := core.Fig16SharedCaches(opts)
	report.Render(os.Stdout, f)

	ec := f.Series[0]
	jbb := f.Series[1]
	fmt.Printf("ECperf:     private %.2f -> fully shared %.2f misses/1000 instructions\n",
		ec.Y[0], ec.Y[len(ec.Y)-1])
	fmt.Printf("SPECjbb-25: private %.2f -> fully shared %.2f misses/1000 instructions\n",
		jbb.Y[0], jbb.Y[len(jbb.Y)-1])
	if ec.Y[len(ec.Y)-1] < ec.Y[0] && jbb.Y[len(jbb.Y)-1] > jbb.Y[0] {
		fmt.Println("=> crossover reproduced: sharing helps ECperf, hurts SPECjbb-25")
	}
}
