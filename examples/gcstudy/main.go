// GC study: the paper's three garbage-collection observations in one run.
//
//  1. Figure 10 — cache-to-cache transfers collapse during stop-the-world
//     collection (only the single collector thread runs, so nobody is
//     exchanging lines).
//  2. Figure 11 — SPECjbb's live memory grows linearly with warehouses;
//     ECperf's middle tier stays flat past a small knee because the
//     database it feeds lives on another machine.
//  3. Figure 9's input — GC wall-clock share of the run.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	// 1. Transfer-rate timeline on an 8-processor SPECjbb run.
	fmt.Fprintln(os.Stderr, "profiling cache-to-cache transfers over time...")
	comm := core.RunCommProfile(core.SPECjbb, core.CommOpts{
		Processors:    8,
		Seed:          3,
		WarmupCycles:  8_000_000,
		MeasureCycles: 40_000_000,
		TimelineBin:   1_000_000,
	})
	report.Render(os.Stdout, core.Fig10C2CTimeline(comm))
	fmt.Printf("collections in window: %d\n\n", comm.GCCount)

	// 2. Live memory vs. scale factor for both benchmarks.
	fmt.Fprintln(os.Stderr, "running memory-scaling study...")
	f := core.Fig11MemoryScaling(core.MemScaleOpts{
		Scales:          []int{1, 4, 8, 16, 24, 32, 40},
		OpsPerScaleUnit: 600,
		Seed:            3,
	})
	report.Render(os.Stdout, f)

	for _, s := range f.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		fmt.Printf("%s: %.1f MB at scale %d -> %.1f MB at scale %d\n",
			s.Label, first, int(s.X[0]), last, int(s.X[len(s.X)-1]))
	}
}
