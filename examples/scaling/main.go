// Scaling study: sweep both middleware workloads across processor counts —
// the experiment behind the paper's Figures 4 (speedup) and 8
// (cache-to-cache ratio) — and render the two figures.
//
// SPECjbb should level off around 6-8x (contention on company-wide
// structures, single-threaded GC); ECperf should scale further, carried by
// its object cache getting hotter, before the kernel network path
// saturates.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	opts := core.Opts{
		Procs:         []int{1, 2, 4, 8, 12, 15},
		Seeds:         stats.Seeds(7, 2),
		WarmupCycles:  6_000_000,
		MeasureCycles: 24_000_000,
	}

	fmt.Fprintln(os.Stderr, "sweeping SPECjbb...")
	jbb := core.RunScalingSweep(core.SPECjbb, opts)
	fmt.Fprintln(os.Stderr, "sweeping ECperf...")
	ec := core.RunScalingSweep(core.ECperf, opts)

	report.Render(os.Stdout, core.Fig4Throughput(jbb, ec))
	report.Render(os.Stdout, core.Fig8C2CRatio(jbb, ec))

	// The per-point detail is available too: e.g. ECperf's falling path
	// length (§4.4 of the paper — constructive interference in the object
	// cache).
	fmt.Println("ECperf instructions per BBop:")
	for i := range ec.Cells {
		cell := &ec.Cells[i]
		m := cell.Metric(func(p *core.ScalingPoint) float64 { return p.InstrPerOp })
		fmt.Printf("  %2d processors: %s\n", cell.Processors, m)
	}
}
