// Kernel-time study: the paper's §6 related-work comparison, end to end.
//
// VolanoMark creates one server thread per client connection and broadcasts
// every chat message to the whole room — almost all of its work is kernel
// networking. ECperf's application server pools threads and batches its
// tier crossings; SPECjbb never touches the network at all. The system-time
// ordering VolanoMark ≫ ECperf ≫ SPECjbb is the §6 claim this example
// reproduces.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	fmt.Fprintln(os.Stderr, "running three workloads on 8 processors...")
	f := core.RelatedWorkKernelTime(core.AblationOpts{
		Processors:    8,
		Seed:          17,
		WarmupCycles:  6_000_000,
		MeasureCycles: 24_000_000,
	})
	report.Render(os.Stdout, f)

	y := f.Series[0].Y
	fmt.Printf("system time share of busy cycles: SPECjbb %.1f%%, ECperf %.1f%%, VolanoMark %.1f%%\n",
		y[0], y[1], y[2])
	if y[2] > y[1] && y[1] > y[0] {
		fmt.Println("=> §6 ordering reproduced: VolanoMark ≫ ECperf ≫ SPECjbb")
	}
}
