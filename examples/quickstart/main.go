// Quickstart: build one simulated machine, run the SPECjbb workload on four
// processors for a tenth of a simulated second, and read off the three
// measurements the library is organized around — throughput, the
// execution-mode breakdown, and the memory-system counters.
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	// A System is a full machine: 16 UltraSPARC-II-like processors with
	// private 1 MB L2 caches on a snooping bus, a Solaris-like scheduler,
	// a simulated JVM heap with a generational collector, and the chosen
	// workload already wired to worker threads.
	sys := core.BuildSystem(core.SystemParams{
		Kind:       core.SPECjbb,
		Processors: 4, // psrset: the workload is bound to 4 of the 16 CPUs
		Seed:       42,
	})

	// Warm the caches, then measure a clean window (the paper reports
	// steady-state intervals only).
	const warmup, window = 10_000_000, 25_000_000
	sys.Engine.Run(warmup)
	sys.Engine.ResetStats()
	sys.Engine.Run(warmup + window)

	res := sys.Engine.Results()
	seconds := float64(window) / core.CyclesPerSecond

	fmt.Printf("throughput: %.0f transactions/s\n", float64(res.BusinessOps)/seconds)

	total := float64(res.Modes.Total())
	fmt.Printf("modes: %.0f%% user, %.0f%% system, %.0f%% idle, %.0f%% gc-idle\n",
		100*float64(res.Modes.User)/total, 100*float64(res.Modes.System)/total,
		100*float64(res.Modes.Idle)/total, 100*float64(res.Modes.GCIdle)/total)

	c := res.CPU
	fmt.Printf("CPI: %.2f over %d instructions\n", c.CPI(), c.Instructions)

	bus := sys.Hier.Bus().Stats
	fmt.Printf("L2 misses: %d (%.0f%% served cache-to-cache)\n",
		bus.DataRequests(), 100*bus.C2CRatio())
}
