// Benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (Figures 4-16). Each benchmark runs the reduced (Quick*)
// configuration of the same driver cmd/figures uses at full fidelity and
// reports the figure's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in miniature. Absolute values are
// simulator-scale; the shapes are what reproduce the paper (see
// EXPERIMENTS.md for the full-fidelity numbers).
package main

import (
	"testing"

	"repro/internal/core"
)

// benchOpts returns the reduced scaling configuration shared by the
// Figure 4-9 benchmarks.
func benchOpts() core.Opts {
	o := core.QuickOpts()
	o.Procs = []int{1, 8, 15}
	return o
}

func BenchmarkFig04ThroughputScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		jbb := core.RunScalingSweep(core.SPECjbb, o)
		ec := core.RunScalingSweep(core.ECperf, o)
		f := core.Fig4Throughput(jbb, ec)
		last := f.Series[0].Y[len(f.Series[0].Y)-1]
		b.ReportMetric(last, "ecperf-speedup@15p")
		last = f.Series[1].Y[len(f.Series[1].Y)-1]
		b.ReportMetric(last, "jbb-speedup@15p")
	}
}

func BenchmarkFig05ExecutionModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		p := core.RunScalingPoint(core.ECperf, 15, o.Seeds[0], o)
		b.ReportMetric(100*p.SystemFrac, "ecperf-system-pct@15p")
		b.ReportMetric(100*(p.IdleFrac+p.GCIdleFrac+p.IOFrac), "ecperf-nonbusy-pct@15p")
	}
}

func BenchmarkFig06CPIBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		p1 := core.RunScalingPoint(core.ECperf, 1, o.Seeds[0], o)
		p15 := core.RunScalingPoint(core.ECperf, 15, o.Seeds[0], o)
		b.ReportMetric(p1.CPI, "ecperf-cpi@1p")
		b.ReportMetric(p15.CPI, "ecperf-cpi@15p")
	}
}

func BenchmarkFig07DataStall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		p := core.RunScalingPoint(core.ECperf, 15, o.Seeds[0], o)
		b.ReportMetric(100*p.DSC2C, "c2c-pct-of-dstall@15p")
		b.ReportMetric(100*p.DSMem, "mem-pct-of-dstall@15p")
	}
}

func BenchmarkFig08C2CRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		jbb := core.RunScalingPoint(core.SPECjbb, 15, o.Seeds[0], o)
		ec := core.RunScalingPoint(core.ECperf, 15, o.Seeds[0], o)
		b.ReportMetric(100*jbb.C2CRatio, "jbb-c2c-pct@15p")
		b.ReportMetric(100*ec.C2CRatio, "ecperf-c2c-pct@15p")
	}
}

func BenchmarkFig09GCScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOpts()
		p := core.RunScalingPoint(core.SPECjbb, 15, o.Seeds[0], o)
		b.ReportMetric(100*p.GCWallFrac, "jbb-gc-wall-pct@15p")
		b.ReportMetric(p.ThroughputNoGC/p.Throughput, "jbb-nogc-speedup-ratio")
	}
}

func BenchmarkFig10C2CTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := core.QuickCommOpts()
		o.MeasureCycles = 30_000_000
		p := core.RunCommProfile(core.SPECjbb, o)
		peak, min := 0.0, 1e18
		for _, v := range p.Timeline {
			if v > peak {
				peak = v
			}
			if v < min {
				min = v
			}
		}
		if peak > 0 {
			b.ReportMetric(min/peak, "min-over-peak-c2c-rate")
		}
		b.ReportMetric(float64(p.GCCount), "collections")
	}
}

func BenchmarkFig11MemoryScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := core.QuickMemScaleOpts()
		f := core.Fig11MemoryScaling(o)
		for _, s := range f.Series {
			b.ReportMetric(s.Y[len(s.Y)-1]/s.Y[0], s.Label+"-growth-ratio")
		}
	}
}

func BenchmarkFig12ICacheMissRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := core.RunCacheSweeps(core.QuickSweepOpts())
		f := core.Fig12ICacheMissRate(cs)
		_ = f
		b.ReportMetric(imissAt(cs, "ECperf"), "ecperf-imiss@256KB")
		b.ReportMetric(imissAt(cs, "SPECjbb-25"), "jbb25-imiss@256KB")
	}
}

func BenchmarkFig13DCacheMissRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs := core.RunCacheSweeps(core.QuickSweepOpts())
		b.ReportMetric(dmissAt(cs, "ECperf"), "ecperf-dmiss@1MB")
		b.ReportMetric(dmissAt(cs, "SPECjbb-25"), "jbb25-dmiss@1MB")
		b.ReportMetric(dmissAt(cs, "SPECjbb-1"), "jbb1-dmiss@1MB")
	}
}

func imissAt(cs *core.CacheSweeps, label string) float64 {
	for _, r := range cs.Results {
		if r.Label == label {
			for _, p := range r.ICurve {
				if p.SizeBytes == 256<<10 {
					return p.MissesPer1000
				}
			}
		}
	}
	return -1
}

func dmissAt(cs *core.CacheSweeps, label string) float64 {
	for _, r := range cs.Results {
		if r.Label == label {
			for _, p := range r.DCurve {
				if p.SizeBytes == 1<<20 {
					return p.MissesPer1000
				}
			}
		}
	}
	return -1
}

func BenchmarkFig14C2CDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := core.QuickCommOpts()
		jbb := core.RunCommProfile(core.SPECjbb, o)
		b.ReportMetric(100*jbb.TopLineShare, "jbb-hottest-line-pct")
		b.ReportMetric(100*jbb.Top01PctShare, "jbb-hottest-0.1pct-lines-pct")
	}
}

func BenchmarkFig15C2CFootprint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := core.QuickCommOpts()
		jbb := core.RunCommProfile(core.SPECjbb, o)
		ec := core.RunCommProfile(core.ECperf, o)
		b.ReportMetric(float64(jbb.LinesTransferring), "jbb-comm-lines")
		b.ReportMetric(float64(ec.LinesTransferring), "ecperf-comm-lines")
	}
}

func BenchmarkFig16SharedCaches(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := core.QuickSharedCacheOpts()
		ecPriv := core.RunSharedCachePoint(core.ECperf, 1, o).DataMissesPer1000.Mean()
		ecShared := core.RunSharedCachePoint(core.ECperf, 8, o).DataMissesPer1000.Mean()
		jbbPriv := core.RunSharedCachePoint(core.SPECjbb, 1, o).DataMissesPer1000.Mean()
		jbbShared := core.RunSharedCachePoint(core.SPECjbb, 8, o).DataMissesPer1000.Mean()
		b.ReportMetric(ecShared/ecPriv, "ecperf-shared-over-private")
		b.ReportMetric(jbbShared/jbbPriv, "jbb25-shared-over-private")
	}
}

// BenchmarkCoSimulation runs the two-machine co-simulated deployment
// (application server + real database machine) and reports the agreement
// with the queueing-model database.
func BenchmarkCoSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.RunCoSim(4, 1, 4_000_000, 12_000_000)
		if r.ModelThroughput > 0 {
			b.ReportMetric(r.CoSimThroughput/r.ModelThroughput, "cosim-over-model")
		}
		b.ReportMetric(100*r.DBBusyFrac, "db-busy-pct")
	}
}
